// Multi-tenant named-KB registry — many knowledge bases, one process.
//
// PR 7 made remi::Service an epoch-pinned snapshot registry for ONE KB:
// requests pin the generation they were admitted on, ReloadKb publishes a
// validated snapshot as generation N+1, and retired generations drain by
// shared_ptr count. This header generalizes that object to many *named*
// tenants: each tenant owns its own epoch chain (KbEpoch = KB + per-
// generation EvalCache + lazily built variant miners + lexical name
// index — exactly the PR 7 object, now one chain per name), its own
// generation counter, its own reload serialization, and its own request
// counters. The registry resolves names to tenants, lazily opens tenants
// from a KbSpec catalog on first use, and attaches/detaches tenants at
// runtime.
//
// Division of labor with Service (service.h):
//   * TenantRegistry owns *lifecycle*: name -> Tenant resolution, catalog
//     lazy opens (single-flight: concurrent cold resolves of the same
//     name wait for one load), attach/detach, and the per-tenant epoch
//     chains.
//   * Service owns *execution*: the one shared dispatch pool and the one
//     global admission controller. Per-tenant quotas are enforced inside
//     that single controller — Tenant only provides the quota values and
//     the gauge storage (AdmissionState), all guarded by the Service's
//     admission mutex.
//
// Lifetime discipline (the couchbase-lite-core generation/sequence idea):
//   * A request holds shared_ptr<Tenant> for its whole execution and a
//     shared_ptr<KbEpoch> pin from admission to response rendering.
//     Detach removes the tenant from the maps only — the last pinned
//     request destroys the tenant and its epochs. Detach never tears
//     down a pinned epoch; it drains.
//   * All tenants' epochs feed one shared live-epoch gauge
//     (ServiceCounters::active_generations == epochs_live_total), so "a
//     retired generation leaked" stays a one-number check per process.
//
// The unnamed tenant "" is the default: every request that carries no
// `kb` field serves from it, which keeps every pre-existing single-KB
// client, test, and bench byte-for-byte compatible. It cannot be
// detached.

#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "kb/knowledge_base.h"
#include "remi/remi.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace remi {

/// \brief Where and how to open a knowledge base.
///
/// The format is sniffed from the file: first by magic bytes (RKF2
/// snapshots, RKF1 containers), then by extension (.ttl/.turtle parse as
/// Turtle; everything else as N-Triples). This replaces the per-consumer
/// format plumbing that used to live in the CLI.
struct KbSpec {
  std::string path;
  /// Build options for text/RKF1 inputs. An .rkf2 snapshot carries its
  /// own build options and ignores these.
  KbOptions kb;
  /// N-Triples only: skip malformed lines instead of failing.
  bool lenient_parse = true;
};

/// A KB opened from disk, before it becomes an epoch.
struct LoadedKb {
  KnowledgeBase kb;
  size_t parse_skipped_lines = 0;
};

/// Opens `spec` with format sniffing and full validation (the RKF2
/// structural-invariant pass, the parsers' error checks). Pure — touches
/// no registry state, so reloads and lazy catalog opens run it off the
/// serving path.
Result<LoadedKb> LoadKbFromSpec(const KbSpec& spec);

/// \brief One KB generation and everything whose lifetime must match it:
/// the per-generation match-set cache (so stale entries die with their
/// epoch), the lazily built variant miners (they hold raw pointers into
/// `kb`), and the lazily built lexical name index (its keys are views
/// into `kb`'s dictionary storage). Published epochs are structurally
/// immutable; the mutable members below are internal lazy caches with
/// their own synchronization.
struct KbEpoch {
  KbEpoch(KnowledgeBase kb_in, uint64_t generation_in,
          const RemiOptions& mining,
          std::shared_ptr<std::atomic<size_t>> live_epochs_in);
  ~KbEpoch();
  KbEpoch(const KbEpoch&) = delete;
  KbEpoch& operator=(const KbEpoch&) = delete;

  const KnowledgeBase kb;
  const uint64_t generation;
  size_t parse_skipped_lines = 0;
  /// Per-generation match-set cache: entries can never outlive (or
  /// cross into) another generation's KB.
  std::shared_ptr<EvalCache> eval_cache;

  /// The miner for a cost/bias variant, created on first use. All
  /// variant miners of one epoch share the service pool and this
  /// epoch's cache.
  mutable std::mutex miners_mu;
  mutable std::map<std::string, std::unique_ptr<RemiMiner>> miners;

  /// Built once on first suffix resolution: IRI local name (after the
  /// last '/' or '#') -> (entity id, number of entities sharing the
  /// name). Keys are views into this epoch's dictionary storage. Makes
  /// the common "Paris"-style lookup O(1) instead of a full dictionary
  /// scan per request on the serving path.
  mutable std::once_flag name_index_once;
  mutable std::unordered_map<std::string_view, std::pair<TermId, uint32_t>>
      name_index;

  /// Shared live-epoch gauge (ServiceCounters::active_generations /
  /// epochs_live_total) — one gauge across *all* tenants; shared_ptr so
  /// a pinned epoch outliving the Service stays safe.
  std::shared_ptr<std::atomic<size_t>> live_epochs;
};

/// \brief Per-tenant admission quota, enforced by the Service's single
/// global admission controller. 0 = unlimited (tenant rides on the
/// global limits only).
struct TenantQuota {
  /// This tenant's requests executing concurrently before its callers
  /// queue.
  size_t max_in_flight = 0;
  /// This tenant's callers allowed to wait for one of its slots; the
  /// next one is rejected with kResourceExhausted (the global queue may
  /// still have room — that is the isolation property: a hot tenant is
  /// bounced before it can fill the shared queue).
  size_t max_queued = 0;
};

/// Per-tenant request counters, same identity as ServiceCounters: at
/// quiescence admitted == completed_ok + deadline_exceeded + cancelled +
/// failed, and the sum over tenants of each field reconciles exactly with
/// the service-wide counter.
struct TenantCounters {
  uint64_t admitted = 0;
  uint64_t completed_ok = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t cancelled = 0;
  uint64_t rejected = 0;
  uint64_t failed = 0;
  /// Subset of deadline_exceeded: requests shed in-band because their
  /// deadline expired at or while queued at admission — before mining.
  uint64_t shed_expired_in_queue = 0;
  size_t in_flight = 0;
  size_t queued = 0;
  size_t peak_in_flight = 0;
  uint64_t reloads_ok = 0;
  uint64_t reloads_rejected = 0;
  /// This tenant's serving generation (1-based, +1 per successful
  /// reload — generations are per-tenant, not global).
  uint64_t generation = 0;
  uint64_t nodes_visited_total = 0;
  uint64_t mine_micros_total = 0;
};

/// \brief Swap in a new KB generation without dropping requests
/// (per-tenant; see Tenant::Reload / Service::ReloadKb).
struct ReloadKbResponse {
  /// OK: the new generation is serving. Corruption / ParseError / IoError:
  /// the candidate was rejected and the previous generation keeps serving
  /// (the fields below then describe that still-serving generation).
  /// NotFound: the named tenant does not exist (Service-level only).
  Status status;
  /// The tenant's serving generation after the call.
  uint64_t generation = 0;
  size_t facts = 0;
  size_t entities = 0;
  /// Malformed N-Triples lines skipped by a lenient reload (0 otherwise).
  size_t parse_skipped_lines = 0;
  /// Open + validate time of the candidate (even when rejected).
  double load_seconds = 0.0;
};

/// One row of Service::ListKbs — a tenant that is open, a catalog entry
/// not yet opened, or both.
struct KbInfo {
  std::string name;  ///< "" = the default tenant
  bool open = false; ///< serving now (catalog entries open lazily)
  bool from_catalog = false;
  uint64_t generation = 0;  ///< 0 when not open
  size_t facts = 0;
  size_t entities = 0;
  TenantQuota quota;
};

/// One entry of a KB catalog file (see ParseKbCatalog).
struct KbCatalogEntry {
  std::string name;
  KbSpec spec;
  /// Per-entry quota override; absent = the registry default.
  std::optional<TenantQuota> quota;
};

/// Parses a KB catalog document:
///
///   {"kbs": [{"name": "dbpedia", "path": "/data/dbpedia.rkf2",
///             "lenient": true, "max_in_flight": 2, "max_queued": 8}]}
///
/// "name" and "path" are required per entry; "lenient" (default true) and
/// the quota knobs (default: the service's per-tenant defaults) are
/// optional. Entries are *registered*, not opened: each KB loads on the
/// first request that names it.
Result<std::vector<KbCatalogEntry>> ParseKbCatalog(std::string_view json);

/// \brief One named KB and its epoch chain: the PR 7 single-KB hot-swap
/// object, one instance per tenant.
///
/// Thread-safe. Requests pin epochs via CurrentEpoch(); Reload publishes
/// the next generation without disturbing pinned ones; the counter
/// methods are lock-free. The admission gauges (admission()) are the one
/// exception: they are storage for the Service's global admission
/// controller and are guarded by *its* mutex, not by anything here.
class Tenant {
 public:
  Tenant(std::string name, const RemiOptions& mining, TenantQuota quota,
         std::shared_ptr<std::atomic<size_t>> live_epochs);

  const std::string& name() const { return name_; }
  const TenantQuota& quota() const { return quota_; }

  /// Publishes generation 1. Called exactly once, before the tenant is
  /// visible to any resolver.
  void PublishInitial(KnowledgeBase kb, size_t parse_skipped_lines);

  /// The serving epoch; the returned shared_ptr is the caller's pin.
  std::shared_ptr<KbEpoch> CurrentEpoch() const;
  uint64_t generation() const { return CurrentEpoch()->generation; }

  /// Opens + validates `spec` off the serving path and, on success,
  /// publishes it as this tenant's next generation. Fails closed: a bad
  /// candidate is reported in-band and the previous generation keeps
  /// serving. Concurrent reloads of one tenant serialize; reloads of
  /// different tenants do not contend.
  ReloadKbResponse Reload(const KbSpec& spec);

  /// The miner for a cost/bias variant of `epoch`, created on first use.
  /// `pool` is the Service's shared dispatch pool (may be null).
  RemiMiner* MinerFor(const KbEpoch& epoch,
                      const std::optional<CostModelOptions>& cost,
                      const std::optional<EnumeratorOptions>& enumerator,
                      ThreadPool* pool) const;

  // --- per-tenant accounting ------------------------------------------------
  void RecordAdmitted() { admitted_.fetch_add(1, std::memory_order_relaxed); }
  void RecordRejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }
  void RecordFailed() { failed_.fetch_add(1, std::memory_order_relaxed); }
  void RecordShedExpired() {
    shed_expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordOutcome(const Status& status);
  void RecordMiningStats(uint64_t nodes_visited, uint64_t mine_micros);

  /// Mean service time of this tenant's completed runs in milliseconds
  /// (0 before the first completion) — feeds the quota-aware
  /// retry_after_ms hint.
  double MeanServiceMs() const;

  /// Snapshot of the atomic counters + generation. The admission gauges
  /// (in_flight, queued, peak_in_flight) are owned by the Service's
  /// admission controller and left zero here; Service::CountersFor fills
  /// them under its admission mutex.
  TenantCounters counters() const;

  /// Per-tenant admission bookkeeping, guarded by the *Service's*
  /// admission mutex (one global admission controller; the tenant only
  /// provides the storage).
  struct AdmissionState {
    size_t in_flight = 0;
    size_t queued = 0;
    size_t peak_in_flight = 0;
  };
  AdmissionState& admission() { return admission_; }
  const AdmissionState& admission() const { return admission_; }

 private:
  const std::string name_;
  const RemiOptions mining_;
  const TenantQuota quota_;
  std::shared_ptr<std::atomic<size_t>> live_epochs_;

  /// The snapshot registry: the serving epoch, swapped by Reload.
  mutable std::mutex epoch_mu_;
  std::shared_ptr<KbEpoch> epoch_;
  /// Serializes this tenant's reloads (generation numbering + publish
  /// order). Never taken on the request path.
  std::mutex reload_mu_;

  AdmissionState admission_;

  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> completed_ok_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> shed_expired_in_queue_{0};
  std::atomic<uint64_t> reloads_ok_{0};
  std::atomic<uint64_t> reloads_rejected_{0};
  std::atomic<uint64_t> nodes_visited_total_{0};
  std::atomic<uint64_t> mine_micros_total_{0};
};

/// \brief Name -> Tenant resolution, catalog lazy opens, attach/detach.
///
/// Thread-safe. The default tenant "" is created by InitDefault before
/// the registry is shared and is always resolvable; it cannot be
/// detached. Catalog entries open on first resolve (single-flight: while
/// one thread loads, others resolving the same name wait on a condition
/// variable instead of loading twice). Detach unmaps the name — in-flight
/// requests keep their shared_ptr<Tenant> and drain naturally.
class TenantRegistry {
 public:
  /// \param mining base mining configuration, copied into every tenant.
  /// \param default_quota quota for tenants without an explicit one.
  /// \param live_epochs the process-wide live-epoch gauge.
  TenantRegistry(const RemiOptions& mining, TenantQuota default_quota,
                 std::shared_ptr<std::atomic<size_t>> live_epochs);

  /// Creates the default tenant "" serving `kb`. Called exactly once,
  /// before any other method.
  void InitDefault(KnowledgeBase kb, size_t parse_skipped_lines);

  /// The "" tenant (never null after InitDefault, never detached).
  std::shared_ptr<Tenant> DefaultTenant() const;

  /// Resolves a name to its tenant, lazily opening a catalog entry on
  /// first use. NotFound for unknown names (the in-band error both wire
  /// protocols surface for a bad "kb" field).
  Result<std::shared_ptr<Tenant>> Resolve(const std::string& name);

  /// The tenant iff already open — never triggers a catalog load
  /// (metrics paths must not pay a KB open). Null when absent.
  std::shared_ptr<Tenant> Peek(const std::string& name) const;

  /// True iff `name` is serveable: open, loading, or in the catalog.
  bool Has(const std::string& name) const;

  /// Opens `spec` (off-lock) and attaches it as tenant `name`.
  /// AlreadyExists if the name is taken (open, loading, or catalog);
  /// InvalidArgument for the reserved default name "".
  Status Attach(const std::string& name, const KbSpec& spec,
                const std::optional<TenantQuota>& quota);

  /// Attaches an already built KB (synthetic and curated workloads).
  Status AttachKb(const std::string& name, KnowledgeBase kb,
                  const std::optional<TenantQuota>& quota);

  /// Unmaps `name` (and masks any catalog entry so it cannot lazily
  /// reopen). In-flight requests drain via their shared_ptr; no epoch is
  /// torn down while pinned. InvalidArgument for ""; NotFound otherwise
  /// when unknown.
  Status Detach(const std::string& name);

  /// Registers a catalog entry without opening it. AlreadyExists if the
  /// name is taken; InvalidArgument for "".
  Status AddCatalogEntry(const std::string& name, const KbSpec& spec,
                         const std::optional<TenantQuota>& quota);

  /// Every open tenant plus every not-yet-opened catalog entry, sorted
  /// by name (the default tenant "" first).
  std::vector<KbInfo> List() const;

  /// Open tenants, for counter aggregation.
  std::vector<std::shared_ptr<Tenant>> OpenTenants() const;

  /// Open tenants right now (the tenants_active gauge).
  size_t tenants_active() const;

 private:
  struct CatalogEntry {
    KbSpec spec;
    TenantQuota quota;
  };

  const RemiOptions mining_;
  const TenantQuota default_quota_;
  std::shared_ptr<std::atomic<size_t>> live_epochs_;

  mutable std::mutex mu_;
  /// Signaled when a single-flight load (lazy open or attach) finishes.
  std::condition_variable loading_cv_;
  std::map<std::string, std::shared_ptr<Tenant>> tenants_;
  std::map<std::string, CatalogEntry> catalog_;
  /// Names with a load in flight; reserves the name across the unlock.
  std::set<std::string> loading_;
};

}  // namespace remi
