#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>

#include "nlg/verbalizer.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace remi {

Result<std::unique_ptr<Service>> Service::Open(const KbSpec& spec,
                                               const ServiceOptions& options) {
  REMI_ASSIGN_OR_RETURN(LoadedKb loaded, LoadKbFromSpec(spec));
  return std::unique_ptr<Service>(new Service(std::move(loaded), options));
}

std::unique_ptr<Service> Service::Create(KnowledgeBase kb,
                                         const ServiceOptions& options) {
  return std::unique_ptr<Service>(
      new Service(LoadedKb{std::move(kb), 0}, options));
}

Service::Service(LoadedKb loaded, const ServiceOptions& options)
    : options_(options) {
  const int effective_threads = options_.mining.EffectiveThreads();
  if (effective_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(
        static_cast<size_t>(effective_threads));
  }
  const TenantQuota default_quota{options_.tenant_max_in_flight,
                                  options_.tenant_max_queued};
  registry_ = std::make_unique<TenantRegistry>(options_.mining, default_quota,
                                               live_epochs_);
  registry_->InitDefault(std::move(loaded.kb), loaded.parse_skipped_lines);
  default_tenant_ = registry_->DefaultTenant();
}

Service::~Service() = default;

const KnowledgeBase& Service::kb() const {
  // The epoch_ member of the (never-detached) default tenant keeps the
  // referenced epoch alive until the next reload retires it — same
  // stability contract as the single-KB service.
  return default_tenant_->CurrentEpoch()->kb;
}

std::shared_ptr<const KnowledgeBase> Service::SharedKb() const {
  std::shared_ptr<KbEpoch> epoch = default_tenant_->CurrentEpoch();
  // Aliased: holds the whole epoch, exposes only its KB.
  return std::shared_ptr<const KnowledgeBase>(epoch, &epoch->kb);
}

uint64_t Service::generation() const { return default_tenant_->generation(); }

size_t Service::parse_skipped_lines() const {
  return default_tenant_->CurrentEpoch()->parse_skipped_lines;
}

ReloadKbResponse Service::ReloadKb(const ReloadKbRequest& request) {
  // Peek, don't Resolve: reloading a catalog entry that never served
  // would open two KBs back to back for no request. Reload targets live
  // tenants.
  std::shared_ptr<Tenant> tenant = registry_->Peek(request.kb);
  if (tenant == nullptr) {
    ReloadKbResponse response;
    response.status =
        Status::NotFound("unknown kb '" + request.kb + "'");
    reloads_rejected_.fetch_add(1, std::memory_order_relaxed);
    return response;
  }
  ReloadKbResponse response = tenant->Reload(request.spec);
  (response.status.ok() ? reloads_ok_ : reloads_rejected_)
      .fetch_add(1, std::memory_order_relaxed);
  return response;
}

// --- multi-tenant registry ---------------------------------------------------

Status Service::AttachKb(const std::string& name, const KbSpec& spec,
                         const std::optional<TenantQuota>& quota) {
  return registry_->Attach(name, spec, quota);
}

Status Service::AttachKb(const std::string& name, KnowledgeBase kb,
                         const std::optional<TenantQuota>& quota) {
  return registry_->AttachKb(name, std::move(kb), quota);
}

Status Service::DetachKb(const std::string& name) {
  return registry_->Detach(name);
}

Status Service::AddCatalogKb(const std::string& name, const KbSpec& spec,
                             const std::optional<TenantQuota>& quota) {
  return registry_->AddCatalogEntry(name, spec, quota);
}

Result<size_t> Service::LoadCatalogFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open catalog file '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  REMI_ASSIGN_OR_RETURN(const std::vector<KbCatalogEntry> entries,
                        ParseKbCatalog(buf.str()));
  // Validate the whole batch against the registry before registering any
  // entry: a catalog that half-loads is worse than one that fails.
  for (const KbCatalogEntry& entry : entries) {
    if (HasKb(entry.name)) {
      return Status::AlreadyExists("catalog entry '" + entry.name +
                                   "' collides with an existing kb");
    }
  }
  for (const KbCatalogEntry& entry : entries) {
    REMI_RETURN_NOT_OK(
        registry_->AddCatalogEntry(entry.name, entry.spec, entry.quota));
  }
  return entries.size();
}

bool Service::HasKb(const std::string& name) const {
  return registry_->Has(name);
}

std::vector<KbInfo> Service::ListKbs() const { return registry_->List(); }

Result<TenantCounters> Service::CountersFor(const std::string& kb) const {
  std::shared_ptr<Tenant> tenant = registry_->Peek(kb);
  if (tenant == nullptr) {
    return Status::NotFound("unknown kb '" + kb + "'");
  }
  TenantCounters c = tenant->counters();
  std::lock_guard<std::mutex> lock(admission_mu_);
  c.in_flight = tenant->admission().in_flight;
  c.queued = tenant->admission().queued;
  c.peak_in_flight = tenant->admission().peak_in_flight;
  return c;
}

// --- admission control -------------------------------------------------------

Status Service::Admit(Tenant& tenant, const Deadline& deadline,
                      const CancellationToken& cancel,
                      double* queue_wait_seconds) {
  Timer timer;
  std::unique_lock<std::mutex> lock(admission_mu_);
  const TenantQuota& quota = tenant.quota();
  Tenant::AdmissionState& adm = tenant.admission();
  const auto global_full = [&] {
    return options_.max_in_flight > 0 && in_flight_ >= options_.max_in_flight;
  };
  const auto tenant_full = [&] {
    return quota.max_in_flight > 0 && adm.in_flight >= quota.max_in_flight;
  };
  // Shed dead-on-arrival work: a request whose deadline already expired
  // gets its DeadlineExceeded now, before it can occupy a slot or queue
  // space — mining an answer nobody will read is pure waste. Counted as
  // admitted (it was accepted, not rejected) so the identity
  // admitted == ok + deadline_exceeded + cancelled + failed holds.
  if (deadline.Expired()) {
    admitted_.fetch_add(1, std::memory_order_relaxed);
    tenant.RecordAdmitted();
    RecordShedLocked(tenant);
    *queue_wait_seconds = timer.ElapsedSeconds();
    return Status::DeadlineExceeded("deadline already expired at admission");
  }
  if (global_full() || tenant_full()) {
    // Reject at entry when the binding gate's queue is already full. The
    // tenant gate trips *before* a hot tenant can occupy more of the
    // shared queue than its quota allows — that is the isolation
    // property: other tenants keep finding global queue room.
    if (tenant_full() && adm.queued >= quota.max_queued) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      tenant.RecordRejected();
      return Status::ResourceExhausted(
          "kb '" + tenant.name() + "': " + std::to_string(adm.in_flight) +
          " requests in flight and " + std::to_string(adm.queued) +
          " queued (tenant quota: " + std::to_string(quota.max_in_flight) +
          " in flight, " + std::to_string(quota.max_queued) + " queued)");
    }
    if (global_full() && queued_ >= EffectiveMaxQueuedLocked()) {
      if (queued_ < options_.max_queued) {
        // Only the tightened brownout depth rejected this caller.
        brownout_rejected_.fetch_add(1, std::memory_order_relaxed);
      }
      rejected_.fetch_add(1, std::memory_order_relaxed);
      tenant.RecordRejected();
      return Status::ResourceExhausted(
          std::to_string(in_flight_) + " requests in flight and " +
          std::to_string(queued_) + " queued (limits: " +
          std::to_string(options_.max_in_flight) + " in flight, " +
          std::to_string(EffectiveMaxQueuedLocked()) + " queued" +
          (brownout_active_ ? ", brownout" : "") + ")");
    }
    ++queued_;
    ++adm.queued;
    // Queued callers poll deadline + cancellation: a request abandoned by
    // its client must not occupy a queue slot forever.
    while (global_full() || tenant_full()) {
      if (deadline.Expired()) {
        --queued_;
        --adm.queued;
        admitted_.fetch_add(1, std::memory_order_relaxed);
        tenant.RecordAdmitted();
        RecordShedLocked(tenant);
        *queue_wait_seconds = timer.ElapsedSeconds();
        RecordQueueWaitLocked(*queue_wait_seconds);
        return Status::DeadlineExceeded("deadline expired while queued");
      }
      if (cancel.CancellationRequested()) {
        --queued_;
        --adm.queued;
        admitted_.fetch_add(1, std::memory_order_relaxed);
        tenant.RecordAdmitted();
        *queue_wait_seconds = timer.ElapsedSeconds();
        RecordQueueWaitLocked(*queue_wait_seconds);
        return Status::Cancelled("cancelled while queued");
      }
      admission_cv_.wait_for(lock, std::chrono::milliseconds(10));
    }
    --queued_;
    --adm.queued;
    // The slot freed, but the wait may have consumed the whole budget
    // (the 10ms poll can land after expiry): re-check before burning a
    // dispatch slot on a request that is already dead.
    if (deadline.Expired()) {
      admitted_.fetch_add(1, std::memory_order_relaxed);
      tenant.RecordAdmitted();
      RecordShedLocked(tenant);
      *queue_wait_seconds = timer.ElapsedSeconds();
      RecordQueueWaitLocked(*queue_wait_seconds);
      admission_cv_.notify_all();  // the slot we declined is still free
      return Status::DeadlineExceeded("deadline expired while queued");
    }
  }
  ++in_flight_;
  ++adm.in_flight;
  peak_in_flight_ = std::max(peak_in_flight_, in_flight_);
  adm.peak_in_flight = std::max(adm.peak_in_flight, adm.in_flight);
  admitted_.fetch_add(1, std::memory_order_relaxed);
  tenant.RecordAdmitted();
  *queue_wait_seconds = timer.ElapsedSeconds();
  RecordQueueWaitLocked(*queue_wait_seconds);
  return Status::OK();
}

void Service::RecordShedLocked(Tenant& tenant) {
  shed_expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
  tenant.RecordShedExpired();
}

void Service::RecordQueueWaitLocked(double wait_seconds) {
  if (options_.brownout_p99_queue_wait_ms <= 0) return;
  if (queue_wait_ring_.size() < kQueueWaitWindow) {
    queue_wait_ring_.push_back(wait_seconds);
  } else {
    queue_wait_ring_[queue_wait_pos_] = wait_seconds;
    queue_wait_pos_ = (queue_wait_pos_ + 1) % kQueueWaitWindow;
  }
  // p99 over the window (64 samples: effectively the max, which is the
  // right bias for a protect-the-tail control signal).
  std::vector<double> sorted = queue_wait_ring_;
  std::sort(sorted.begin(), sorted.end());
  const size_t idx =
      (sorted.size() * 99 + 99) / 100 == 0
          ? 0
          : std::min(sorted.size() - 1, (sorted.size() * 99) / 100);
  const double p99_ms = sorted[idx] * 1000.0;
  // Hysteresis: enter above the bound, exit below half of it, so the
  // gate doesn't flap around the threshold.
  if (!brownout_active_ && p99_ms > options_.brownout_p99_queue_wait_ms) {
    brownout_active_ = true;
  } else if (brownout_active_ &&
             p99_ms < options_.brownout_p99_queue_wait_ms * 0.5) {
    brownout_active_ = false;
  }
}

size_t Service::EffectiveMaxQueuedLocked() const {
  if (!brownout_active_) return options_.max_queued;
  const double fraction =
      std::min(1.0, std::max(0.0, options_.brownout_queue_fraction));
  const auto tightened =
      static_cast<size_t>(static_cast<double>(options_.max_queued) * fraction);
  return std::max<size_t>(1, tightened);
}

void Service::Release(Tenant& tenant) {
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    --in_flight_;
    --tenant.admission().in_flight;
  }
  // notify_all, not notify_one: with per-tenant gates the woken waiter
  // may still be quota-blocked while a different tenant's waiter could
  // run — a single wake could strand it.
  admission_cv_.notify_all();
}

Deadline Service::DeadlineFor(const RequestControl& control) const {
  if (control.deadline_seconds > 0) {
    return Deadline::AfterSeconds(control.deadline_seconds);
  }
  return Deadline();
}

void Service::RecordAcceptError(bool fatal) {
  (fatal ? accept_errors_fatal_ : accept_errors_retried_)
      .fetch_add(1, std::memory_order_relaxed);
}

void Service::RecordMiningStats(Tenant& tenant, const RemiStats& stats,
                                double mine_seconds) {
  const uint64_t micros = static_cast<uint64_t>(mine_seconds * 1e6);
  nodes_visited_total_.fetch_add(stats.nodes_visited,
                                 std::memory_order_relaxed);
  mine_micros_total_.fetch_add(micros, std::memory_order_relaxed);
  tenant.RecordMiningStats(stats.nodes_visited, micros);
}

uint64_t Service::ComputeRetryAfterMs(size_t queued, size_t max_in_flight,
                                      double mean_service_ms,
                                      uint32_t jitter256) {
  // Per-queued-request drain estimate; floored so a cold service (no
  // completions yet, mean 0) still spreads clients out.
  const double per_slot_ms = std::max(mean_service_ms, 25.0);
  const double slots = static_cast<double>(std::max<size_t>(max_in_flight, 1));
  // +1: the retrying caller queues behind everyone counted in `queued`.
  double base =
      per_slot_ms * (static_cast<double>(queued) + 1.0) / slots;
  // Strict growth in `queued` must survive the clamp, so clamp the
  // *inputs'* contribution by adding the floor rather than flooring the
  // result: hint(q+1) > hint(q) at fixed jitter.
  base = 25.0 + std::min(base, 10000.0);
  const double jitter = 0.75 + static_cast<double>(jitter256 & 0xff) / 512.0;
  return static_cast<uint64_t>(base * jitter);
}

uint64_t Service::RetryAfterMsHint() const {
  return RetryAfterMsHint(std::string());
}

uint64_t Service::RetryAfterMsHint(const std::string& kb) const {
  // Peek, never Resolve: a metrics/error path must not lazily open a KB.
  std::shared_ptr<Tenant> tenant = registry_->Peek(kb);
  const bool tenant_gate =
      tenant != nullptr && tenant->quota().max_in_flight > 0;
  size_t queued;
  size_t slots;
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    if (tenant_gate) {
      // Quota-aware: a throttled tenant's clients should back off on
      // *its* congestion. The global queue may be empty while this
      // tenant's quota is saturated (or vice versa).
      queued = tenant->admission().queued;
      slots = tenant->quota().max_in_flight;
    } else {
      queued = queued_;
      slots = options_.max_in_flight;
    }
  }
  double mean_service_ms;
  if (tenant_gate) {
    mean_service_ms = tenant->MeanServiceMs();
  } else {
    const uint64_t completed =
        completed_ok_.load(std::memory_order_relaxed) +
        deadline_exceeded_.load(std::memory_order_relaxed) +
        cancelled_.load(std::memory_order_relaxed);
    mean_service_ms =
        completed > 0
            ? static_cast<double>(
                  mine_micros_total_.load(std::memory_order_relaxed)) /
                  (1000.0 * static_cast<double>(completed))
            : 0.0;
  }
  // Cheap xorshift jitter off a per-call counter: no <random> state, no
  // lock, good enough to de-synchronize retrying clients.
  static std::atomic<uint32_t> jitter_state{0x9e3779b9u};
  uint32_t j = jitter_state.fetch_add(0x61c88647u, std::memory_order_relaxed);
  j ^= j << 13;
  j ^= j >> 17;
  return ComputeRetryAfterMs(queued, slots, mean_service_ms, j);
}

void Service::CountOutcome(Tenant& tenant, const Status& status) {
  if (status.ok()) {
    completed_ok_.fetch_add(1, std::memory_order_relaxed);
  } else if (status.IsDeadlineExceeded()) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  } else if (status.IsCancelled()) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
  }
  tenant.RecordOutcome(status);
}

ServiceCounters Service::counters() const {
  ServiceCounters c;
  c.admitted = admitted_.load(std::memory_order_relaxed);
  c.completed_ok = completed_ok_.load(std::memory_order_relaxed);
  c.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  c.cancelled = cancelled_.load(std::memory_order_relaxed);
  c.rejected = rejected_.load(std::memory_order_relaxed);
  c.failed = failed_.load(std::memory_order_relaxed);
  c.reloads_ok = reloads_ok_.load(std::memory_order_relaxed);
  c.reloads_rejected = reloads_rejected_.load(std::memory_order_relaxed);
  c.generation = generation();
  c.active_generations = live_epochs_->load(std::memory_order_relaxed);
  c.tenants_active = registry_->tenants_active();
  c.accept_errors_retried =
      accept_errors_retried_.load(std::memory_order_relaxed);
  c.accept_errors_fatal = accept_errors_fatal_.load(std::memory_order_relaxed);
  c.nodes_visited_total = nodes_visited_total_.load(std::memory_order_relaxed);
  c.mine_micros_total = mine_micros_total_.load(std::memory_order_relaxed);
  c.shed_expired_in_queue =
      shed_expired_in_queue_.load(std::memory_order_relaxed);
  c.brownout_rejected = brownout_rejected_.load(std::memory_order_relaxed);
  c.connections_reaped_idle =
      connections_reaped_idle_.load(std::memory_order_relaxed);
  c.connections_reaped_write_stall =
      connections_reaped_write_stall_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(admission_mu_);
  c.in_flight = in_flight_;
  c.peak_in_flight = peak_in_flight_;
  c.brownout_active = brownout_active_;
  return c;
}

void Service::RecordConnectionReaped(bool write_stall) {
  if (write_stall) {
    connections_reaped_write_stall_.fetch_add(1, std::memory_order_relaxed);
  } else {
    connections_reaped_idle_.fetch_add(1, std::memory_order_relaxed);
  }
}

// --- target resolution -------------------------------------------------------

void Service::EnsureNameIndex(const KbEpoch& epoch) {
  std::call_once(epoch.name_index_once, [&epoch] {
    epoch.name_index.reserve(epoch.kb.NumEntities());
    for (TermId id = 0; id < epoch.kb.dict().size(); ++id) {
      if (epoch.kb.dict().kind(id) != TermKind::kIri) continue;
      if (!epoch.kb.IsEntity(id)) continue;
      const std::string_view lex = epoch.kb.dict().lexical(id);
      const size_t cut = lex.find_last_of("/#");
      const std::string_view local =
          cut == std::string_view::npos ? lex : lex.substr(cut + 1);
      auto [it, inserted] =
          epoch.name_index.emplace(local, std::make_pair(id, 1u));
      if (!inserted) ++it->second.second;
    }
  });
}

Result<TermId> Service::ResolveTargetIn(const KbEpoch& epoch,
                                        const std::string& name) {
  // The exact-IRI path enforces the same entity contract as the suffix
  // paths: a predicate or class IRI is not a mining target.
  auto exact = epoch.kb.dict().Lookup(TermKind::kIri, name);
  if (exact.ok() && epoch.kb.IsEntity(*exact)) return *exact;
  size_t hits = 0;
  TermId match = kNullTerm;
  if (name.find_first_of("/#") == std::string::npos) {
    // A separator-free name can only match as a whole IRI local name:
    // answered by the O(1) index instead of a dictionary scan.
    EnsureNameIndex(epoch);
    const auto it = epoch.name_index.find(name);
    if (it != epoch.name_index.end()) {
      match = it->second.first;
      hits = it->second.second;
    }
  } else {
    // Multi-segment suffixes ("resource/Paris") are rare: fall back to
    // the boundary-checked scan.
    for (TermId id = 0; id < epoch.kb.dict().size(); ++id) {
      if (epoch.kb.dict().kind(id) != TermKind::kIri) continue;
      if (!epoch.kb.IsEntity(id)) continue;
      const std::string_view lex = epoch.kb.dict().lexical(id);
      if (EndsWith(lex, name) &&
          (lex.size() == name.size() ||
           lex[lex.size() - name.size() - 1] == '/' ||
           lex[lex.size() - name.size() - 1] == '#')) {
        match = id;
        ++hits;
      }
    }
  }
  if (hits == 1) return match;
  if (hits == 0) return Status::NotFound("no entity matches '" + name + "'");
  return Status::InvalidArgument("'" + name + "' is ambiguous (" +
                                 std::to_string(hits) + " matches)");
}

Result<std::vector<TermId>> Service::ResolveTargetsIn(const KbEpoch& epoch,
                                                      const TargetSpec& spec) {
  std::vector<TermId> out;
  out.reserve(spec.ids.size() + spec.names.size());
  for (const TermId id : spec.ids) {
    if (id >= epoch.kb.dict().size()) {
      return Status::InvalidArgument("target id " + std::to_string(id) +
                                     " is outside the dictionary");
    }
    // Same entity contract as the lexical paths: predicates, classes and
    // literals are not mining targets.
    if (!epoch.kb.IsEntity(id)) {
      return Status::InvalidArgument("target id " + std::to_string(id) +
                                     " is not an entity");
    }
    out.push_back(id);
  }
  for (const std::string& name : spec.names) {
    if (name.empty()) continue;
    REMI_ASSIGN_OR_RETURN(const TermId id, ResolveTargetIn(epoch, name));
    out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (out.empty()) {
    return Status::InvalidArgument("request contains no targets");
  }
  return out;
}

Result<TermId> Service::ResolveTarget(const std::string& name) const {
  std::shared_ptr<KbEpoch> epoch = default_tenant_->CurrentEpoch();
  return ResolveTargetIn(*epoch, name);
}

Result<std::vector<TermId>> Service::ResolveTargets(
    const TargetSpec& spec) const {
  std::shared_ptr<KbEpoch> epoch = default_tenant_->CurrentEpoch();
  return ResolveTargetsIn(*epoch, spec);
}

// --- request handlers --------------------------------------------------------

MineResponse Service::BuildMineResponse(const KbEpoch& epoch,
                                        const RemiResult& mined,
                                        bool verbalize,
                                        std::vector<TermId> targets) const {
  MineResponse response;
  if (mined.cancelled) {
    response.status = Status::Cancelled("mining cancelled");
  } else if (mined.timed_out) {
    response.status = Status::DeadlineExceeded("mining deadline expired");
  }
  response.found = mined.found;
  response.targets = std::move(targets);
  // Labels are rendered here, under the request's pin, so serialization
  // layers never have to touch a possibly-swapped live KB.
  for (const TermId t : response.targets) {
    response.target_labels.push_back(epoch.kb.Label(t));
  }
  response.stats = mined.stats;
  response.service.generation = epoch.generation;
  if (mined.found) {
    response.cost = mined.cost;
    response.expression = mined.expression;
    response.expression_text = mined.expression.ToString(epoch.kb.dict());
    if (verbalize) {
      Verbalizer verbalizer(&epoch.kb);
      response.verbalization = verbalizer.Sentence(mined.expression);
    }
    response.exceptions = mined.exceptions;
    for (const TermId e : mined.exceptions) {
      response.exception_labels.push_back(epoch.kb.Label(e));
    }
  }
  return response;
}

Result<MineResponse> Service::Mine(const MineRequest& request) {
  REMI_ASSIGN_OR_RETURN(const std::shared_ptr<Tenant> tenant,
                        registry_->Resolve(request.kb));
  const Deadline deadline = DeadlineFor(request.control);
  double queue_wait = 0.0;
  const Status admitted =
      Admit(*tenant, deadline, request.control.cancel, &queue_wait);
  if (admitted.IsResourceExhausted()) return admitted;
  if (!admitted.ok()) {
    // Expired or cancelled while queued: in-band outcome, nothing ran.
    MineResponse response;
    response.status = admitted;
    response.service.queue_wait_seconds = queue_wait;
    CountOutcome(*tenant, admitted);
    return response;
  }
  // Pin after admission, not before: the request runs on the tenant's
  // freshest generation and holds its pin only while actually executing.
  std::shared_ptr<KbEpoch> epoch = tenant->CurrentEpoch();

  auto run = [&]() -> Result<MineResponse> {
    ServiceStats service_stats;
    service_stats.queue_wait_seconds = queue_wait;
    service_stats.generation = epoch->generation;

    Timer resolve_timer;
    auto targets = ResolveTargetsIn(*epoch, request.targets);
    if (!targets.ok()) return targets.status();
    service_stats.resolve_seconds = resolve_timer.ElapsedSeconds();

    RemiMiner* miner =
        tenant->MinerFor(*epoch, request.cost, request.enumerator,
                         pool_.get());
    MineControl control;
    control.deadline = deadline;
    control.cancel = request.control.cancel;

    Timer mine_timer;
    auto mined = miner->MineReWithExceptions(
        *targets, request.max_exceptions, control);
    if (!mined.ok()) return mined.status();
    service_stats.mine_seconds = mine_timer.ElapsedSeconds();
    RecordMiningStats(*tenant, mined->stats, service_stats.mine_seconds);

    MineResponse response = BuildMineResponse(*epoch, *mined,
                                              request.verbalize,
                                              std::move(*targets));
    response.service = service_stats;
    CountOutcome(*tenant, response.status);
    return response;
  };
  auto result = run();
  if (!result.ok()) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    tenant->RecordFailed();
  }
  Release(*tenant);
  return result;
}

Result<BatchMineResponse> Service::BatchMine(const BatchMineRequest& request) {
  if (request.target_sets.empty()) {
    return Status::InvalidArgument("batch contains no target sets");
  }
  REMI_ASSIGN_OR_RETURN(const std::shared_ptr<Tenant> tenant,
                        registry_->Resolve(request.kb));
  const Deadline deadline = DeadlineFor(request.control);
  double queue_wait = 0.0;
  const Status admitted =
      Admit(*tenant, deadline, request.control.cancel, &queue_wait);
  if (admitted.IsResourceExhausted()) return admitted;
  if (!admitted.ok()) {
    BatchMineResponse response;
    response.status = admitted;
    response.service.queue_wait_seconds = queue_wait;
    CountOutcome(*tenant, admitted);
    return response;
  }
  std::shared_ptr<KbEpoch> epoch = tenant->CurrentEpoch();

  auto run = [&]() -> Result<BatchMineResponse> {
    BatchMineResponse response;
    response.service.queue_wait_seconds = queue_wait;
    response.service.generation = epoch->generation;

    Timer resolve_timer;
    std::vector<std::vector<TermId>> sets;
    sets.reserve(request.target_sets.size());
    for (size_t i = 0; i < request.target_sets.size(); ++i) {
      auto targets = ResolveTargetsIn(*epoch, request.target_sets[i]);
      if (!targets.ok()) {
        return WithMessagePrefix(targets.status(),
                                 "target set #" + std::to_string(i));
      }
      sets.push_back(std::move(*targets));
    }
    response.service.resolve_seconds = resolve_timer.ElapsedSeconds();

    RemiMiner* miner =
        tenant->MinerFor(*epoch, request.cost, request.enumerator,
                         pool_.get());
    MineControl control;
    control.deadline = deadline;
    control.cancel = request.control.cancel;

    Timer mine_timer;
    auto mined = miner->MineBatch(sets, request.max_exceptions, control);
    if (!mined.ok()) return mined.status();
    response.service.mine_seconds = mine_timer.ElapsedSeconds();
    RemiStats batch_stats;
    for (const RemiResult& item : *mined) {
      batch_stats.nodes_visited += item.stats.nodes_visited;
    }
    RecordMiningStats(*tenant, batch_stats, response.service.mine_seconds);

    bool any_timed_out = false;
    bool any_cancelled = false;
    for (size_t i = 0; i < mined->size(); ++i) {
      MineResponse item = BuildMineResponse(
          *epoch, (*mined)[i], request.verbalize, std::move(sets[i]));
      any_timed_out |= item.status.IsDeadlineExceeded();
      any_cancelled |= item.status.IsCancelled();
      response.results.push_back(std::move(item));
    }
    if (any_cancelled) {
      response.status = Status::Cancelled("batch cancelled");
    } else if (any_timed_out) {
      response.status = Status::DeadlineExceeded("batch deadline expired");
    }
    CountOutcome(*tenant, response.status);
    return response;
  };
  auto result = run();
  if (!result.ok()) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    tenant->RecordFailed();
  }
  Release(*tenant);
  return result;
}

Result<SummarizeResponse> Service::Summarize(const SummarizeRequest& request) {
  if (request.k == 0) {
    return Status::InvalidArgument("summary size k must be positive");
  }
  REMI_ASSIGN_OR_RETURN(const std::shared_ptr<Tenant> tenant,
                        registry_->Resolve(request.kb));
  const Deadline deadline = DeadlineFor(request.control);
  double queue_wait = 0.0;
  const Status admitted =
      Admit(*tenant, deadline, request.control.cancel, &queue_wait);
  if (admitted.IsResourceExhausted()) return admitted;
  if (!admitted.ok()) {
    SummarizeResponse response;
    response.status = admitted;
    response.service.queue_wait_seconds = queue_wait;
    CountOutcome(*tenant, admitted);
    return response;
  }
  std::shared_ptr<KbEpoch> epoch = tenant->CurrentEpoch();

  auto run = [&]() -> Result<SummarizeResponse> {
    SummarizeResponse response;
    response.service.queue_wait_seconds = queue_wait;
    response.service.generation = epoch->generation;

    Timer resolve_timer;
    auto resolved = ResolveTargetsIn(*epoch, request.entity);
    if (!resolved.ok()) return resolved.status();
    if (resolved->size() != 1) {
      return Status::InvalidArgument(
          "summarize expects exactly one entity, got " +
          std::to_string(resolved->size()));
    }
    response.service.resolve_seconds = resolve_timer.ElapsedSeconds();
    response.entity = (*resolved)[0];
    response.entity_label = epoch->kb.Label(response.entity);

    // Table 3 protocol: standard language, no rdf:type, no inverses.
    const RemiOptions table3 = MakeTable3RemiOptions(request.metric);
    RemiMiner* miner =
        tenant->MinerFor(*epoch, table3.cost, table3.enumerator, pool_.get());
    MineControl control;
    control.deadline = deadline;
    control.cancel = request.control.cancel;

    Timer mine_timer;
    auto summary = RemiSummarize(*miner, response.entity, request.k, control);
    response.service.mine_seconds = mine_timer.ElapsedSeconds();
    // RemiSummarize doesn't surface per-run RemiStats; the time still
    // feeds the mean-service-time estimate behind RetryAfterMsHint().
    RecordMiningStats(*tenant, RemiStats{}, response.service.mine_seconds);
    if (!summary.ok()) {
      if (!summary.status().IsDeadlineExceeded() &&
          !summary.status().IsCancelled()) {
        return summary.status();
      }
      response.status = summary.status();  // in-band interrupt outcome
    } else {
      response.items = std::move(*summary);
      for (const SummaryItem& item : response.items) {
        response.item_labels.push_back(epoch->kb.Label(item.predicate) +
                                       " = " + epoch->kb.Label(item.object));
      }
    }
    CountOutcome(*tenant, response.status);
    return response;
  };
  auto result = run();
  if (!result.ok()) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    tenant->RecordFailed();
  }
  Release(*tenant);
  return result;
}

Result<std::vector<RankedSubgraph>> Service::Candidates(
    const CandidatesRequest& request,
    std::vector<std::string>* expression_texts) {
  REMI_ASSIGN_OR_RETURN(const std::shared_ptr<Tenant> tenant,
                        registry_->Resolve(request.kb));
  std::shared_ptr<KbEpoch> epoch = tenant->CurrentEpoch();
  REMI_ASSIGN_OR_RETURN(const std::vector<TermId> targets,
                        ResolveTargetsIn(*epoch, request.targets));
  RemiMiner* miner =
      tenant->MinerFor(*epoch, request.cost, request.enumerator, pool_.get());
  MineControl control;
  control.deadline = DeadlineFor(request.control);
  control.cancel = request.control.cancel;
  REMI_ASSIGN_OR_RETURN(std::vector<RankedSubgraph> ranked,
                        miner->RankedCommonSubgraphs(targets, control));
  if (request.limit > 0 && ranked.size() > request.limit) {
    ranked.resize(request.limit);
  }
  if (expression_texts != nullptr) {
    expression_texts->clear();
    expression_texts->reserve(ranked.size());
    for (const RankedSubgraph& r : ranked) {
      // Rendered under this request's pin: safe to serialize even if a
      // reload retires this generation before the caller writes it out.
      expression_texts->push_back(r.expression.ToString(epoch->kb.dict()));
    }
  }
  return ranked;
}

}  // namespace remi
