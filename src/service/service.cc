#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "nlg/verbalizer.h"
#include "rdf/ntriples.h"
#include "rdf/rkf.h"
#include "rdf/turtle_lite.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace remi {

namespace {

/// First bytes of the file, for magic-based format sniffing. Missing or
/// short files return an empty string (the open path reports the error).
std::string ReadMagic(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  char buf[4];
  const size_t got = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  return std::string(buf, got);
}

/// Deterministic cache key of a miner variant: the cost-model and
/// language-bias knobs a request may override.
std::string VariantKey(const CostModelOptions& cost,
                       const EnumeratorOptions& enumerator) {
  std::string key;
  key += 'c';
  key += std::to_string(static_cast<int>(cost.metric));
  key += cost.use_fitted_entity_ranks ? 'f' : '-';
  key += cost.use_join_predicate_ranks ? 'j' : '-';
  key += 'e';
  key += enumerator.extended_language ? 'x' : '-';
  key += enumerator.skip_blank_atoms ? 'b' : '-';
  key += enumerator.prune_prominent_expansion ? 'p' : '-';
  key += std::to_string(enumerator.prominent_object_fraction);
  key += enumerator.include_type_atoms ? 't' : '-';
  key += enumerator.include_inverse_predicates ? 'i' : '-';
  key += std::to_string(enumerator.max_subgraphs);
  return key;
}

}  // namespace

Result<std::unique_ptr<Service>> Service::Open(const KbSpec& spec,
                                               const ServiceOptions& options) {
  const std::string magic = ReadMagic(spec.path);
  if (magic == std::string("RKF2", 4)) {
    auto kb = KnowledgeBase::OpenSnapshot(spec.path);
    if (!kb.ok()) return WithMessagePrefix(kb.status(), spec.path);
    return std::unique_ptr<Service>(
        new Service(std::move(*kb), options));
  }
  if (magic == std::string("RKF1", 4)) {
    auto data = ReadRkfFile(spec.path);
    if (!data.ok()) return WithMessagePrefix(data.status(), spec.path);
    return std::unique_ptr<Service>(new Service(
        KnowledgeBase::Build(std::move(data->dict), std::move(data->triples),
                             spec.kb),
        options));
  }
  Dictionary dict;
  Result<std::vector<Triple>> triples = Status::Internal("unreachable");
  size_t skipped_lines = 0;
  if (EndsWith(spec.path, ".ttl") || EndsWith(spec.path, ".turtle")) {
    TurtleLiteParser parser(&dict);
    triples = parser.ParseFile(spec.path);
  } else {
    NTriplesParser parser(&dict, spec.lenient_parse);
    triples = parser.ParseFile(spec.path);
    skipped_lines = parser.skipped_lines();
  }
  if (!triples.ok()) return WithMessagePrefix(triples.status(), spec.path);
  auto service = std::unique_ptr<Service>(new Service(
      KnowledgeBase::Build(std::move(dict), std::move(*triples), spec.kb),
      options));
  service->parse_skipped_lines_ = skipped_lines;
  return service;
}

std::unique_ptr<Service> Service::Create(KnowledgeBase kb,
                                         const ServiceOptions& options) {
  return std::unique_ptr<Service>(new Service(std::move(kb), options));
}

Service::Service(KnowledgeBase kb, const ServiceOptions& options)
    : kb_(std::move(kb)),
      options_(options),
      eval_cache_(std::make_shared<EvalCache>(
          options.mining.eval_cache_capacity,
          options.mining.eval_cache_shards)) {
  const int effective_threads = options_.mining.EffectiveThreads();
  if (effective_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(
        static_cast<size_t>(effective_threads));
  }
}

Service::~Service() = default;

RemiMiner* Service::MinerFor(const std::optional<CostModelOptions>& cost,
                             const std::optional<EnumeratorOptions>&
                                 enumerator) {
  RemiOptions variant = options_.mining;
  if (cost.has_value()) variant.cost = *cost;
  if (enumerator.has_value()) variant.enumerator = *enumerator;
  const std::string key = VariantKey(variant.cost, variant.enumerator);

  {
    std::lock_guard<std::mutex> lock(miners_mu_);
    auto it = miners_.find(key);
    if (it != miners_.end()) return it->second.get();
  }
  // Build outside the lock: a first Ĉpr request runs a full PageRank
  // pass, which must not stall concurrent requests for other (or
  // already-built) variants. Two racing builders of the same variant
  // just discard one result.
  auto built =
      std::make_unique<RemiMiner>(&kb_, variant, pool_.get(), eval_cache_);
  std::lock_guard<std::mutex> lock(miners_mu_);
  auto [it, inserted] = miners_.emplace(key, std::move(built));
  return it->second.get();
}

// --- admission control -------------------------------------------------------

Status Service::Admit(const Deadline& deadline,
                      const CancellationToken& cancel,
                      double* queue_wait_seconds) {
  Timer timer;
  std::unique_lock<std::mutex> lock(admission_mu_);
  if (options_.max_in_flight > 0 && in_flight_ >= options_.max_in_flight) {
    if (queued_ >= options_.max_queued) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          std::to_string(in_flight_) + " requests in flight and " +
          std::to_string(queued_) + " queued (limits: " +
          std::to_string(options_.max_in_flight) + " in flight, " +
          std::to_string(options_.max_queued) + " queued)");
    }
    ++queued_;
    // Queued callers poll deadline + cancellation: a request abandoned by
    // its client must not occupy a queue slot forever.
    while (in_flight_ >= options_.max_in_flight) {
      // A queued request that gives up still counts as admitted (it was
      // accepted, not rejected), so the counter identity
      // admitted == ok + deadline_exceeded + cancelled + failed holds.
      if (deadline.Expired()) {
        --queued_;
        admitted_.fetch_add(1, std::memory_order_relaxed);
        *queue_wait_seconds = timer.ElapsedSeconds();
        return Status::DeadlineExceeded("deadline expired while queued");
      }
      if (cancel.CancellationRequested()) {
        --queued_;
        admitted_.fetch_add(1, std::memory_order_relaxed);
        *queue_wait_seconds = timer.ElapsedSeconds();
        return Status::Cancelled("cancelled while queued");
      }
      admission_cv_.wait_for(lock, std::chrono::milliseconds(10));
    }
    --queued_;
  }
  ++in_flight_;
  peak_in_flight_ = std::max(peak_in_flight_, in_flight_);
  admitted_.fetch_add(1, std::memory_order_relaxed);
  *queue_wait_seconds = timer.ElapsedSeconds();
  return Status::OK();
}

void Service::Release() {
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    --in_flight_;
  }
  admission_cv_.notify_one();
}

Deadline Service::DeadlineFor(const RequestControl& control) const {
  if (control.deadline_seconds > 0) {
    return Deadline::AfterSeconds(control.deadline_seconds);
  }
  return Deadline();
}

void Service::CountOutcome(const Status& status) {
  if (status.ok()) {
    completed_ok_.fetch_add(1, std::memory_order_relaxed);
  } else if (status.IsDeadlineExceeded()) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  } else if (status.IsCancelled()) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
  }
}

ServiceCounters Service::counters() const {
  ServiceCounters c;
  c.admitted = admitted_.load(std::memory_order_relaxed);
  c.completed_ok = completed_ok_.load(std::memory_order_relaxed);
  c.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  c.cancelled = cancelled_.load(std::memory_order_relaxed);
  c.rejected = rejected_.load(std::memory_order_relaxed);
  c.failed = failed_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(admission_mu_);
  c.in_flight = in_flight_;
  c.peak_in_flight = peak_in_flight_;
  return c;
}

// --- target resolution -------------------------------------------------------

void Service::EnsureLocalNameIndex() const {
  std::call_once(local_name_index_once_, [this] {
    local_name_index_.reserve(kb_.NumEntities());
    for (TermId id = 0; id < kb_.dict().size(); ++id) {
      if (kb_.dict().kind(id) != TermKind::kIri) continue;
      if (!kb_.IsEntity(id)) continue;
      const std::string_view lex = kb_.dict().lexical(id);
      const size_t cut = lex.find_last_of("/#");
      const std::string_view local =
          cut == std::string_view::npos ? lex : lex.substr(cut + 1);
      auto [it, inserted] =
          local_name_index_.emplace(local, std::make_pair(id, 1u));
      if (!inserted) ++it->second.second;
    }
  });
}

Result<TermId> Service::ResolveTarget(const std::string& name) const {
  // The exact-IRI path enforces the same entity contract as the suffix
  // paths: a predicate or class IRI is not a mining target.
  auto exact = kb_.dict().Lookup(TermKind::kIri, name);
  if (exact.ok() && kb_.IsEntity(*exact)) return *exact;
  size_t hits = 0;
  TermId match = kNullTerm;
  if (name.find_first_of("/#") == std::string::npos) {
    // A separator-free name can only match as a whole IRI local name:
    // answered by the O(1) index instead of a dictionary scan.
    EnsureLocalNameIndex();
    const auto it = local_name_index_.find(name);
    if (it != local_name_index_.end()) {
      match = it->second.first;
      hits = it->second.second;
    }
  } else {
    // Multi-segment suffixes ("resource/Paris") are rare: fall back to
    // the boundary-checked scan.
    for (TermId id = 0; id < kb_.dict().size(); ++id) {
      if (kb_.dict().kind(id) != TermKind::kIri) continue;
      if (!kb_.IsEntity(id)) continue;
      const std::string_view lex = kb_.dict().lexical(id);
      if (EndsWith(lex, name) &&
          (lex.size() == name.size() ||
           lex[lex.size() - name.size() - 1] == '/' ||
           lex[lex.size() - name.size() - 1] == '#')) {
        match = id;
        ++hits;
      }
    }
  }
  if (hits == 1) return match;
  if (hits == 0) return Status::NotFound("no entity matches '" + name + "'");
  return Status::InvalidArgument("'" + name + "' is ambiguous (" +
                                 std::to_string(hits) + " matches)");
}

Result<std::vector<TermId>> Service::ResolveTargets(
    const TargetSpec& spec) const {
  std::vector<TermId> out;
  out.reserve(spec.ids.size() + spec.names.size());
  for (const TermId id : spec.ids) {
    if (id >= kb_.dict().size()) {
      return Status::InvalidArgument("target id " + std::to_string(id) +
                                     " is outside the dictionary");
    }
    // Same entity contract as the lexical paths: predicates, classes and
    // literals are not mining targets.
    if (!kb_.IsEntity(id)) {
      return Status::InvalidArgument("target id " + std::to_string(id) +
                                     " is not an entity");
    }
    out.push_back(id);
  }
  for (const std::string& name : spec.names) {
    if (name.empty()) continue;
    REMI_ASSIGN_OR_RETURN(const TermId id, ResolveTarget(name));
    out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (out.empty()) {
    return Status::InvalidArgument("request contains no targets");
  }
  return out;
}

// --- request handlers --------------------------------------------------------

MineResponse Service::BuildMineResponse(const RemiResult& mined,
                                        bool verbalize,
                                        std::vector<TermId> targets) const {
  MineResponse response;
  if (mined.cancelled) {
    response.status = Status::Cancelled("mining cancelled");
  } else if (mined.timed_out) {
    response.status = Status::DeadlineExceeded("mining deadline expired");
  }
  response.found = mined.found;
  response.targets = std::move(targets);
  response.stats = mined.stats;
  if (mined.found) {
    response.cost = mined.cost;
    response.expression = mined.expression;
    response.expression_text = mined.expression.ToString(kb_.dict());
    if (verbalize) {
      Verbalizer verbalizer(&kb_);
      response.verbalization = verbalizer.Sentence(mined.expression);
    }
    response.exceptions = mined.exceptions;
    for (const TermId e : mined.exceptions) {
      response.exception_labels.push_back(kb_.Label(e));
    }
  }
  return response;
}

Result<MineResponse> Service::Mine(const MineRequest& request) {
  const Deadline deadline = DeadlineFor(request.control);
  double queue_wait = 0.0;
  const Status admitted =
      Admit(deadline, request.control.cancel, &queue_wait);
  if (admitted.IsResourceExhausted()) return admitted;
  if (!admitted.ok()) {
    // Expired or cancelled while queued: in-band outcome, nothing ran.
    MineResponse response;
    response.status = admitted;
    response.service.queue_wait_seconds = queue_wait;
    CountOutcome(admitted);
    return response;
  }

  auto run = [&]() -> Result<MineResponse> {
    ServiceStats service_stats;
    service_stats.queue_wait_seconds = queue_wait;

    Timer resolve_timer;
    auto targets = ResolveTargets(request.targets);
    if (!targets.ok()) return targets.status();
    service_stats.resolve_seconds = resolve_timer.ElapsedSeconds();

    RemiMiner* miner = MinerFor(request.cost, request.enumerator);
    MineControl control;
    control.deadline = deadline;
    control.cancel = request.control.cancel;

    Timer mine_timer;
    auto mined = miner->MineReWithExceptions(
        *targets, request.max_exceptions, control);
    if (!mined.ok()) return mined.status();
    service_stats.mine_seconds = mine_timer.ElapsedSeconds();

    MineResponse response =
        BuildMineResponse(*mined, request.verbalize, std::move(*targets));
    response.service = service_stats;
    CountOutcome(response.status);
    return response;
  };
  auto result = run();
  if (!result.ok()) failed_.fetch_add(1, std::memory_order_relaxed);
  Release();
  return result;
}

Result<BatchMineResponse> Service::BatchMine(const BatchMineRequest& request) {
  if (request.target_sets.empty()) {
    return Status::InvalidArgument("batch contains no target sets");
  }
  const Deadline deadline = DeadlineFor(request.control);
  double queue_wait = 0.0;
  const Status admitted =
      Admit(deadline, request.control.cancel, &queue_wait);
  if (admitted.IsResourceExhausted()) return admitted;
  if (!admitted.ok()) {
    BatchMineResponse response;
    response.status = admitted;
    response.service.queue_wait_seconds = queue_wait;
    CountOutcome(admitted);
    return response;
  }

  auto run = [&]() -> Result<BatchMineResponse> {
    BatchMineResponse response;
    response.service.queue_wait_seconds = queue_wait;

    Timer resolve_timer;
    std::vector<std::vector<TermId>> sets;
    sets.reserve(request.target_sets.size());
    for (size_t i = 0; i < request.target_sets.size(); ++i) {
      auto targets = ResolveTargets(request.target_sets[i]);
      if (!targets.ok()) {
        return WithMessagePrefix(targets.status(),
                                 "target set #" + std::to_string(i));
      }
      sets.push_back(std::move(*targets));
    }
    response.service.resolve_seconds = resolve_timer.ElapsedSeconds();

    RemiMiner* miner = MinerFor(request.cost, request.enumerator);
    MineControl control;
    control.deadline = deadline;
    control.cancel = request.control.cancel;

    Timer mine_timer;
    auto mined = miner->MineBatch(sets, request.max_exceptions, control);
    if (!mined.ok()) return mined.status();
    response.service.mine_seconds = mine_timer.ElapsedSeconds();

    bool any_timed_out = false;
    bool any_cancelled = false;
    for (size_t i = 0; i < mined->size(); ++i) {
      MineResponse item = BuildMineResponse(
          (*mined)[i], request.verbalize, std::move(sets[i]));
      any_timed_out |= item.status.IsDeadlineExceeded();
      any_cancelled |= item.status.IsCancelled();
      response.results.push_back(std::move(item));
    }
    if (any_cancelled) {
      response.status = Status::Cancelled("batch cancelled");
    } else if (any_timed_out) {
      response.status = Status::DeadlineExceeded("batch deadline expired");
    }
    CountOutcome(response.status);
    return response;
  };
  auto result = run();
  if (!result.ok()) failed_.fetch_add(1, std::memory_order_relaxed);
  Release();
  return result;
}

Result<SummarizeResponse> Service::Summarize(const SummarizeRequest& request) {
  if (request.k == 0) {
    return Status::InvalidArgument("summary size k must be positive");
  }
  const Deadline deadline = DeadlineFor(request.control);
  double queue_wait = 0.0;
  const Status admitted =
      Admit(deadline, request.control.cancel, &queue_wait);
  if (admitted.IsResourceExhausted()) return admitted;
  if (!admitted.ok()) {
    SummarizeResponse response;
    response.status = admitted;
    response.service.queue_wait_seconds = queue_wait;
    CountOutcome(admitted);
    return response;
  }

  auto run = [&]() -> Result<SummarizeResponse> {
    SummarizeResponse response;
    response.service.queue_wait_seconds = queue_wait;

    Timer resolve_timer;
    auto resolved = ResolveTargets(request.entity);
    if (!resolved.ok()) return resolved.status();
    if (resolved->size() != 1) {
      return Status::InvalidArgument(
          "summarize expects exactly one entity, got " +
          std::to_string(resolved->size()));
    }
    response.service.resolve_seconds = resolve_timer.ElapsedSeconds();
    response.entity = (*resolved)[0];
    response.entity_label = kb_.Label(response.entity);

    // Table 3 protocol: standard language, no rdf:type, no inverses.
    const RemiOptions table3 = MakeTable3RemiOptions(request.metric);
    RemiMiner* miner = MinerFor(table3.cost, table3.enumerator);
    MineControl control;
    control.deadline = deadline;
    control.cancel = request.control.cancel;

    Timer mine_timer;
    auto summary = RemiSummarize(*miner, response.entity, request.k, control);
    response.service.mine_seconds = mine_timer.ElapsedSeconds();
    if (!summary.ok()) {
      if (!summary.status().IsDeadlineExceeded() &&
          !summary.status().IsCancelled()) {
        return summary.status();
      }
      response.status = summary.status();  // in-band interrupt outcome
    } else {
      response.items = std::move(*summary);
      for (const SummaryItem& item : response.items) {
        response.item_labels.push_back(kb_.Label(item.predicate) + " = " +
                                       kb_.Label(item.object));
      }
    }
    CountOutcome(response.status);
    return response;
  };
  auto result = run();
  if (!result.ok()) failed_.fetch_add(1, std::memory_order_relaxed);
  Release();
  return result;
}

Result<std::vector<RankedSubgraph>> Service::Candidates(
    const CandidatesRequest& request) {
  REMI_ASSIGN_OR_RETURN(const std::vector<TermId> targets,
                        ResolveTargets(request.targets));
  RemiMiner* miner = MinerFor(request.cost, request.enumerator);
  MineControl control;
  control.deadline = DeadlineFor(request.control);
  control.cancel = request.control.cancel;
  REMI_ASSIGN_OR_RETURN(std::vector<RankedSubgraph> ranked,
                        miner->RankedCommonSubgraphs(targets, control));
  if (request.limit > 0 && ranked.size() > request.limit) {
    ranked.resize(request.limit);
  }
  return ranked;
}

}  // namespace remi
