#include "service/socket_util.h"

#include <fcntl.h>
#include <sys/socket.h>

#include <cerrno>

#include "util/io_hooks.h"

namespace remi {

AcceptErrorAction ClassifyAcceptError(int err) {
  switch (err) {
    case EINTR:
    case ECONNABORTED:
    case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
      return AcceptErrorAction::kRetry;
    // Linux accept(2) documents that already-pending network errors on
    // the new socket are reported through accept: the listener is fine.
    case EPERM:
    case EPROTO:
    case ENOPROTOOPT:
    case EHOSTDOWN:
#ifdef ENONET
    case ENONET:
#endif
    case EHOSTUNREACH:
    case ENETDOWN:
    case ENETUNREACH:
      return AcceptErrorAction::kRetryCounted;
    case EMFILE:
    case ENFILE:
    case ENOBUFS:
    case ENOMEM:
      return AcceptErrorAction::kRetryAfterBackoff;
    case EBADF:
    case EINVAL:
    case ENOTSOCK:
    case EOPNOTSUPP:
    case EFAULT:
      return AcceptErrorAction::kFatal;
    default:
      return AcceptErrorAction::kRetryAfterBackoff;
  }
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = io::Hooks().Send(fd, data.data() + sent,
                                       data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      // EAGAIN on a blocking socket is a send-timeout (or injected
      // noise); the bytes are still deliverable, so retry like EINTR.
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace remi
