#include "service/frame_codec.h"

#include <cstring>

namespace remi {

namespace {

void AppendLe16(uint16_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void AppendLe32(uint32_t v, std::string* out) {
  AppendLe16(static_cast<uint16_t>(v & 0xffff), out);
  AppendLe16(static_cast<uint16_t>(v >> 16), out);
}

void AppendLe64(uint64_t v, std::string* out) {
  AppendLe32(static_cast<uint32_t>(v & 0xffffffffu), out);
  AppendLe32(static_cast<uint32_t>(v >> 32), out);
}

uint32_t ReadLe32(const char* p) {
  const unsigned char* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

uint64_t ReadLe64(const char* p) {
  return static_cast<uint64_t>(ReadLe32(p)) |
         (static_cast<uint64_t>(ReadLe32(p + 4)) << 32);
}

}  // namespace

const char* FrameVerbToOp(uint8_t verb) {
  switch (static_cast<FrameVerb>(verb)) {
    case FrameVerb::kPing:
      return "ping";
    case FrameVerb::kMine:
      return "mine";
    case FrameVerb::kBatchMine:
      return "batch_mine";
    case FrameVerb::kSummarize:
      return "summarize";
    case FrameVerb::kCandidates:
      return "candidates";
    case FrameVerb::kCounters:
      return "stats";
    case FrameVerb::kReload:
      return "reload";
    case FrameVerb::kAttachKb:
      return "attach";
    case FrameVerb::kDetachKb:
      return "detach";
    case FrameVerb::kListKbs:
      return "list_kbs";
    case FrameVerb::kUseKb:
      return "use_kb";
  }
  return nullptr;
}

void AppendFrame(uint8_t verb, uint64_t request_id, std::string_view payload,
                 std::string* out) {
  out->reserve(out->size() + kFrameHeaderBytes + payload.size());
  out->append(kFrameMagic, sizeof(kFrameMagic));
  out->push_back(static_cast<char>(verb));
  out->push_back('\0');  // flags
  AppendLe16(0, out);    // reserved
  AppendLe64(request_id, out);
  AppendLe32(static_cast<uint32_t>(payload.size()), out);
  out->append(payload);
}

FrameDecoder::Result FrameDecoder::Next(FrameView* out) {
  if (poisoned_) return Result::kError;
  // The previous frame's bytes are consumed on the *next* call, so the
  // FrameView handed out stays valid while the caller processes it.
  if (pending_consume_ > 0) {
    buffer_.Consume(pending_consume_);
    pending_consume_ = 0;
  }
  const std::string_view pending = buffer_.Pending();
  if (pending.size() < kFrameHeaderBytes) {
    // Reject a bad magic as soon as the first bytes arrive instead of
    // waiting for a full header that will never parse.
    const size_t check = std::min(pending.size(), sizeof(kFrameMagic));
    if (std::memcmp(pending.data(), kFrameMagic, check) != 0) {
      poisoned_ = true;
      status_ = Status::InvalidArgument(
          "bad frame magic (expected the bytes \"REMI\")");
      return Result::kError;
    }
    return Result::kNeedMore;
  }
  if (std::memcmp(pending.data(), kFrameMagic, sizeof(kFrameMagic)) != 0) {
    poisoned_ = true;
    status_ = Status::InvalidArgument(
        "bad frame magic (expected the bytes \"REMI\")");
    return Result::kError;
  }
  const uint8_t verb = static_cast<uint8_t>(pending[4]);
  const uint8_t flags = static_cast<uint8_t>(pending[5]);
  const uint32_t reserved = static_cast<uint32_t>(
      static_cast<unsigned char>(pending[6]) |
      (static_cast<unsigned char>(pending[7]) << 8));
  const uint64_t request_id = ReadLe64(pending.data() + 8);
  const uint64_t payload_len = ReadLe32(pending.data() + 16);
  if (flags != 0 || reserved != 0) {
    poisoned_ = true;
    error_request_id_ = request_id;
    status_ = Status::InvalidArgument(
        "nonzero reserved frame header bits (version mismatch?)");
    return Result::kError;
  }
  if (payload_len > max_payload_bytes_) {
    // Checked against the *declared* length: the oversize payload is
    // never buffered, so a lying header can't make us allocate it.
    poisoned_ = true;
    error_request_id_ = request_id;
    status_ = Status::InvalidArgument(
        "frame payload of " + std::to_string(payload_len) +
        " bytes exceeds the " + std::to_string(max_payload_bytes_) +
        " byte limit");
    return Result::kError;
  }
  if (pending.size() < kFrameHeaderBytes + payload_len) {
    return Result::kNeedMore;
  }
  out->verb = verb;
  out->request_id = request_id;
  out->payload = pending.substr(kFrameHeaderBytes,
                                static_cast<size_t>(payload_len));
  pending_consume_ = kFrameHeaderBytes + static_cast<size_t>(payload_len);
  return Result::kFrame;
}

WireMode SniffWireMode(char first_byte) {
  if (first_byte == kFrameMagic[0]) return WireMode::kBinary;
  if (first_byte == '{' || first_byte == ' ' || first_byte == '\t' ||
      first_byte == '\r' || first_byte == '\n') {
    return WireMode::kNdjson;
  }
  return WireMode::kInvalid;
}

}  // namespace remi
