// remi::Service — the stable serving façade of the library.
//
// The paper's cost-vs-users scenario (Table 2) and the entity-summarization
// application (§5) both presume a single KB instance answering many
// heterogeneous requests. Service packages that — and generalizes it to
// many *named* KBs in one process: a TenantRegistry
// (service/tenant_registry.h) maps names to tenants, each tenant owning
// its own epoch chain (KB generations + match-set caches + warm variant
// miners), all served through one long-lived work-stealing thread pool
// and one global admission controller. Consumers (the CLI, the wire
// servers, examples, harnesses) talk to this API only; the layers below
// (RemiMiner, Evaluator, Verbalizer, the summarizer) are implementation
// detail they no longer wire up by hand.
//
// Multi-tenant model:
//   * Every request names its KB via the `kb` field ("" = the unnamed
//     default tenant, so all pre-existing single-KB callers work
//     unchanged). Unknown names fail with kNotFound in-band.
//   * Tenants come from three places: the KB the service was opened on
//     (the default tenant), AttachKb/DetachKb at runtime (the
//     attach/detach/list_kbs admin verbs), and a KbSpec catalog
//     (AddCatalogKb/LoadCatalogFile) whose entries open lazily on first
//     request.
//   * Admission is ONE controller: the global max_in_flight/max_queued
//     bounds plus per-tenant quotas enforced under the same lock. A hot
//     tenant exceeding its quota gets kResourceExhausted (with a
//     retry_after_ms hint derived from *its* queue, not the global one)
//     while other tenants keep serving.
//   * ReloadKb is per-tenant: reloading tenant A under sustained load on
//     tenant B leaves B's pinned results byte-identical, and a rejected
//     candidate rolls back A alone.
//
// Hot-swap (epoch-pinned snapshot registry, per tenant):
//   * The KB, its match-set cache, its variant miners, and its lexical
//     name index are bundled into one immutable-once-published KbEpoch,
//     held by shared_ptr. Every request pins the epoch that is current
//     when it starts executing and uses only that epoch's state until it
//     returns — so a concurrent ReloadKb can never change a request's
//     results mid-flight (byte-identical to a no-reload run).
//   * ReloadKb opens and fully validates a candidate KB *off the serving
//     path* and only then publishes it as that tenant's generation N+1.
//     A corrupt, truncated, or invariant-violating image fails closed:
//     the response carries an in-band Corruption/ParseError/IoError
//     status and the tenant keeps serving generation N. No reload ever
//     drops an in-flight or queued request.
//   * Retired generations are destroyed when their last pinned request
//     completes (the shared_ptr count is the drain counter; there is no
//     global pause). The same discipline covers DetachKb: a detached
//     tenant's epochs drain, they are never torn down while pinned.
//
// Contracts:
//   * Every request carries a RequestControl: a relative deadline and a
//     cooperative cancellation token. Both are threaded through the
//     REMI/P-REMI DFS (polled at every search node, including spilled
//     subtree tasks), so an expired request stops within one node
//     evaluation instead of running unbounded.
//   * Request-level failures (bad targets, unknown kb, capacity) are the
//     error side of the returned Result. Execution outcomes of an
//     *admitted* run — kOk, kDeadlineExceeded, kCancelled — are reported
//     in-band as `response.status`, alongside the partial
//     ServiceStats/RemiStats the run accumulated before interruption.
//   * Admission control bounds concurrency: at most max_in_flight
//     requests execute while up to max_queued callers wait; one more
//     caller gets kResourceExhausted. Per-tenant quotas bound each
//     tenant's share of both numbers.
//
// See README.md "Serving & the Service API", "Hot-swap & operational
// runbook", and "Multi-tenant serving" for the full status-code table,
// reload semantics, and quota semantics.

#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "kb/knowledge_base.h"
#include "remi/remi.h"
#include "service/tenant_registry.h"
#include "summ/remi_summarizer.h"
#include "util/cancellation.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace remi {

/// \brief Server-wide configuration.
struct ServiceOptions {
  /// Base mining configuration. `mining.num_threads` sizes the Service's
  /// shared pool (>1 enables P-REMI and concurrent batch items);
  /// `mining.eval_cache_capacity/shards` size each generation's
  /// match-set cache. Per-request overrides replace only the cost model /
  /// language bias.
  RemiOptions mining;

  /// Requests executing concurrently before callers queue. 0 = unlimited
  /// (no admission control; max_queued is then ignored).
  size_t max_in_flight = 4;

  /// Callers allowed to wait for a slot; the next one is rejected with
  /// kResourceExhausted.
  size_t max_queued = 16;

  /// Default per-tenant quota (TenantQuota), applied to every tenant —
  /// including the default one — unless an attach/catalog entry
  /// overrides it. 0 = unlimited: tenants ride on the global limits
  /// only, which is the pre-multi-tenant behavior.
  size_t tenant_max_in_flight = 0;
  size_t tenant_max_queued = 0;

  /// Brownout: when the p99 queue wait (over a sliding window of recent
  /// admissions) exceeds this bound, the effective global queue depth
  /// tightens to brownout_queue_fraction * max_queued — excess callers
  /// get ResourceExhausted *now* instead of queueing toward a deadline
  /// they cannot meet. Exits with hysteresis at half the bound.
  /// 0 = disabled.
  double brownout_p99_queue_wait_ms = 0.0;
  /// Fraction of max_queued kept while browned out (floored at 1 slot).
  double brownout_queue_fraction = 0.25;
};

/// \brief Per-request execution control.
struct RequestControl {
  /// Wall-clock budget in seconds, measured from admission (queue wait
  /// counts against it); 0 = no deadline.
  double deadline_seconds = 0.0;
  /// Cooperative cancellation; see util/cancellation.h.
  CancellationToken cancel;
};

/// \brief One target set, as dictionary ids and/or lexical forms.
///
/// Lexical forms are full IRIs or unambiguous IRI suffixes ("Paris"
/// resolves to <http://dbpedia.org/resource/Paris> when unique at a '/'
/// or '#' boundary). Ids and names are merged; duplicates are fine.
struct TargetSpec {
  std::vector<TermId> ids;
  std::vector<std::string> names;
};

/// \brief Mine the most intuitive referring expression for one target set.
struct MineRequest {
  /// Which KB to serve from ("" = the default tenant). Unknown names
  /// fail the request with kNotFound.
  std::string kb;
  TargetSpec targets;
  /// Allowed non-target matches (0 = strict RE; paper §6 future work).
  size_t max_exceptions = 0;
  /// Also render the result as an English-ish sentence.
  bool verbalize = false;
  /// Per-request cost-model override (e.g. Ĉpr instead of the service
  /// default). Variant miners share the pool and the match-set cache.
  std::optional<CostModelOptions> cost;
  /// Per-request language-bias override (e.g. atoms-only).
  std::optional<EnumeratorOptions> enumerator;
  RequestControl control;
};

/// Timing breakdown of one request's trip through the Service.
struct ServiceStats {
  double queue_wait_seconds = 0.0;  ///< admission queue
  double resolve_seconds = 0.0;     ///< lexical target resolution
  double mine_seconds = 0.0;        ///< time inside the miner
  /// Tenant KB generation this request was pinned to (0 = never pinned,
  /// e.g. expired while queued).
  uint64_t generation = 0;
};

struct MineResponse {
  /// Execution outcome: OK, DeadlineExceeded, or Cancelled. Interrupted
  /// runs still carry the partial stats below.
  Status status;
  bool found = false;
  double cost = 0.0;
  std::vector<TermId> targets;  ///< resolved, sorted, deduplicated
  /// Labels of `targets`, rendered under the request's pinned generation
  /// (wire serialization must not consult the live KB: a concurrent
  /// reload could have swapped it).
  std::vector<std::string> target_labels;
  Expression expression;
  std::string expression_text;
  std::string verbalization;  ///< filled iff request.verbalize
  std::vector<TermId> exceptions;
  std::vector<std::string> exception_labels;
  /// Search counters of this run. Caveat: the eval sub-stats (cache
  /// hits/misses, evaluations) are deltas over counters shared by all
  /// concurrent requests on this service, so under concurrency they may
  /// include sibling requests' evaluator activity (same caveat as
  /// RemiMiner::MineBatch).
  RemiStats stats;
  ServiceStats service;
};

/// \brief Mine many independent target sets in one request (the paper's
/// many-users workload). The deadline and the admission slot cover the
/// whole batch.
struct BatchMineRequest {
  std::string kb;  ///< "" = the default tenant
  std::vector<TargetSpec> target_sets;
  size_t max_exceptions = 0;
  bool verbalize = false;
  std::optional<CostModelOptions> cost;
  std::optional<EnumeratorOptions> enumerator;
  RequestControl control;
};

struct BatchMineResponse {
  /// OK, or DeadlineExceeded/Cancelled when the batch was interrupted
  /// (individual results then also carry their own per-run status).
  Status status;
  std::vector<MineResponse> results;
  ServiceStats service;
};

/// \brief Top-k most intuitive atoms of one entity (Table 3 protocol:
/// standard language, no rdf:type, no inverse predicates).
struct SummarizeRequest {
  std::string kb;     ///< "" = the default tenant
  TargetSpec entity;  ///< must resolve to exactly one entity
  size_t k = 5;
  ProminenceMetric metric = ProminenceMetric::kFrequency;
  RequestControl control;
};

struct SummarizeResponse {
  Status status;
  TermId entity = kNullTerm;
  std::string entity_label;
  Summary items;
  std::vector<std::string> item_labels;  ///< "predicate = object" per item
  ServiceStats service;
};

/// \brief The ranked candidate queue (Alg. 1 line 2) for a target set —
/// the introspection surface used by demos and the user-study harnesses.
struct CandidatesRequest {
  std::string kb;  ///< "" = the default tenant
  TargetSpec targets;
  /// Keep only the cheapest `limit` candidates; 0 = all.
  size_t limit = 0;
  std::optional<CostModelOptions> cost;
  std::optional<EnumeratorOptions> enumerator;
  /// Deadline/cancellation, polled during the Ĉ-costing pass (candidates
  /// bypass admission control, so this is the only bound on the call).
  RequestControl control;
};

/// \brief Swap in a new KB generation without dropping requests.
///
/// The candidate is opened and fully validated off the serving path; only
/// a candidate that passes every structural-invariant check is published.
/// All failures are reported in-band (fail closed, keep serving).
struct ReloadKbRequest {
  /// Which tenant to reload ("" = the default tenant). Unknown names
  /// report kNotFound in the response status; no other tenant is
  /// touched either way.
  std::string kb;
  KbSpec spec;
};

/// Service-wide request counters (monotonic since construction). At
/// quiescence, admitted == completed_ok + deadline_exceeded + cancelled
/// + failed; rejected requests were never admitted. All request fields
/// aggregate over every tenant; the per-tenant split is CountersFor().
struct ServiceCounters {
  uint64_t admitted = 0;
  uint64_t completed_ok = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t cancelled = 0;
  uint64_t rejected = 0;  ///< kResourceExhausted at admission
  uint64_t failed = 0;    ///< admitted but invalid (bad targets etc.)
  /// Requests whose deadline had already expired at admission or while
  /// queued: shed in-band with DeadlineExceeded *before* any mining work
  /// (a subset of deadline_exceeded; nodes_visited_total is untouched).
  uint64_t shed_expired_in_queue = 0;
  /// Callers rejected only because brownout tightened the queue depth
  /// (the full max_queued would have let them wait).
  uint64_t brownout_rejected = 0;
  /// Gauge: the admission controller is currently browned out (p99 queue
  /// wait exceeded ServiceOptions::brownout_p99_queue_wait_ms).
  bool brownout_active = false;
  size_t in_flight = 0;
  size_t peak_in_flight = 0;
  // --- hot-swap registry ---
  uint64_t reloads_ok = 0;        ///< published generations (beyond the first)
  uint64_t reloads_rejected = 0;  ///< fail-closed ReloadKb calls
  /// The default tenant's serving generation (generations are
  /// per-tenant; see CountersFor for named tenants).
  uint64_t generation = 0;
  /// Epochs still alive across ALL tenants: each tenant's serving epoch
  /// plus retired generations kept alive by in-flight pinned requests.
  /// Equals tenants_active at quiescence; a value stuck above that means
  /// a retired generation leaked. (Exported on the wire as both
  /// active_generations and epochs_live_total.)
  size_t active_generations = 0;
  /// Open tenants (the default one counts; lazy catalog entries don't
  /// until first use).
  size_t tenants_active = 0;
  // --- transport health (reported by the wire servers) ---
  /// accept(2) failures survived and retried (EPROTO, EMFILE bursts, ...).
  /// A growing value with zero new connections is the old zombie-accept
  /// signature, now visible instead of silent.
  uint64_t accept_errors_retried = 0;
  /// accept(2) failures that terminated an accept loop (dead listener).
  uint64_t accept_errors_fatal = 0;
  /// Connections the epoll core reaped for lifecycle-timeout reasons:
  /// idle (no traffic and no pending work past --idle-timeout-ms, which
  /// includes a never-completed wire-mode handshake) and write-stall (a
  /// peer that stopped draining its responses past
  /// --write-stall-timeout-ms — the slow-loris signature).
  uint64_t connections_reaped_idle = 0;
  uint64_t connections_reaped_write_stall = 0;
  // --- aggregated mining stats (the "counters" verb's RemiStats view) ---
  uint64_t nodes_visited_total = 0;  ///< DFS nodes across all admitted runs
  uint64_t mine_micros_total = 0;    ///< wall micros inside the miner
};

/// \brief One serving process, many named KBs, many requests,
/// hot-swappable generations per tenant.
///
/// Thread-safe: any number of threads may issue requests concurrently;
/// admission control bounds how many actually execute, and
/// ReloadKb/AttachKb/DetachKb may run concurrently with all of them.
/// Responses' Expression/TermId values index the dictionary of the
/// tenant generation that produced them — keep the Service alive (and,
/// under concurrent reload, prefer the pre-rendered *_text/*_labels
/// response fields) while using them.
class Service {
 public:
  /// Opens the KB described by `spec` and starts a service on it (the
  /// default tenant; attach more via AttachKb / the catalog).
  static Result<std::unique_ptr<Service>> Open(
      const KbSpec& spec, const ServiceOptions& options = {});

  /// Adopts an already built KB (synthetic and curated workloads).
  static std::unique_ptr<Service> Create(KnowledgeBase kb,
                                         const ServiceOptions& options = {});

  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // --- request surface -------------------------------------------------------

  /// Result error: InvalidArgument (empty/ambiguous targets, bad ids),
  /// NotFound (unresolvable name or unknown `kb`), ResourceExhausted
  /// (admission). Response status: OK | DeadlineExceeded | Cancelled.
  Result<MineResponse> Mine(const MineRequest& request);

  /// Same contract as Mine, over many sets sharing one admission slot.
  Result<BatchMineResponse> BatchMine(const BatchMineRequest& request);

  /// Same contract as Mine: the deadline/cancellation token bound the
  /// queue wait and the atom-costing pass.
  Result<SummarizeResponse> Summarize(const SummarizeRequest& request);

  /// Ranked candidate queue; bypasses admission control (introspection),
  /// but the request's control still bounds the costing pass —
  /// DeadlineExceeded/Cancelled surface as the Result error here since
  /// there is no partial payload to return. When `expression_texts` is
  /// non-null it receives one rendered expression per returned candidate,
  /// produced under the request's pinned generation (safe to serialize
  /// even if a reload lands concurrently).
  Result<std::vector<RankedSubgraph>> Candidates(
      const CandidatesRequest& request,
      std::vector<std::string>* expression_texts = nullptr);

  // --- hot swap --------------------------------------------------------------

  /// Opens + validates `request.spec` off the serving path and, on
  /// success, atomically publishes it as the named tenant's next
  /// generation. Fails closed: a corrupt/truncated/invariant-violating
  /// candidate is reported in-band (Corruption/ParseError/IoError) and
  /// the tenant's previous generation keeps serving; an unknown
  /// `request.kb` reports kNotFound. In-flight requests pinned to older
  /// generations are never disturbed; their epochs are destroyed when
  /// the last pinned request completes. Concurrent reloads of one tenant
  /// serialize; different tenants reload independently.
  ReloadKbResponse ReloadKb(const ReloadKbRequest& request);

  // --- multi-tenant registry -------------------------------------------------

  /// Opens `spec` (off the serving path) and attaches it as the named
  /// tenant. kAlreadyExists if the name is taken (open or catalog);
  /// kInvalidArgument for the reserved default name "". `quota` absent =
  /// the service's default per-tenant quota.
  Status AttachKb(const std::string& name, const KbSpec& spec,
                  const std::optional<TenantQuota>& quota = std::nullopt);

  /// Attaches an already built KB (synthetic and curated workloads).
  Status AttachKb(const std::string& name, KnowledgeBase kb,
                  const std::optional<TenantQuota>& quota = std::nullopt);

  /// Detaches the named tenant (and masks any catalog entry with that
  /// name). In-flight requests on it drain — a pinned epoch is never
  /// torn down. kInvalidArgument for the default tenant, kNotFound for
  /// unknown names.
  Status DetachKb(const std::string& name);

  /// Registers a lazily opened catalog entry (loaded on first request
  /// that names it). Same errors as AttachKb.
  Status AddCatalogKb(const std::string& name, const KbSpec& spec,
                      const std::optional<TenantQuota>& quota = std::nullopt);

  /// Reads a catalog file (see ParseKbCatalog for the format) and
  /// registers every entry. Returns the number of entries registered;
  /// fails atomically on parse errors or duplicate names (no partial
  /// registration).
  Result<size_t> LoadCatalogFile(const std::string& path);

  /// True iff `name` is serveable now or on first use (open tenant or
  /// catalog entry). Never loads anything.
  bool HasKb(const std::string& name) const;

  /// Every open tenant and not-yet-opened catalog entry, name-sorted
  /// (default tenant "" first).
  std::vector<KbInfo> ListKbs() const;

  /// Per-tenant counter snapshot (admission gauges included). kNotFound
  /// for unknown names; a catalog entry not yet opened also reports
  /// kNotFound (it has served nothing).
  Result<TenantCounters> CountersFor(const std::string& kb) const;

  // --- resolution & introspection -------------------------------------------

  /// Resolves one lexical form (full IRI or unambiguous suffix) to an
  /// entity id of the default tenant's *current* generation. NotFound /
  /// InvalidArgument on zero / several matches.
  Result<TermId> ResolveTarget(const std::string& name) const;

  /// Resolves a TargetSpec to a sorted, deduplicated id list; validates
  /// that explicit ids are in the dictionary range (default tenant).
  Result<std::vector<TermId>> ResolveTargets(const TargetSpec& spec) const;

  /// The default tenant's current KB. The reference is stable only while
  /// no concurrent ReloadKb retires that generation — single-owner
  /// callers (CLI, tests, examples) may hold it across calls; concurrent
  /// servers should pin via SharedKb() instead.
  const KnowledgeBase& kb() const;

  /// The default tenant's current KB, pinned: the aliased shared_ptr
  /// keeps the whole epoch (KB + caches) alive even after a reload
  /// retires it.
  std::shared_ptr<const KnowledgeBase> SharedKb() const;

  /// The default tenant's serving generation number (1-based, +1 per
  /// successful reload).
  uint64_t generation() const;

  const ServiceOptions& options() const { return options_; }
  ServiceCounters counters() const;

  /// Records an accept(2) failure observed by a wire server fronting this
  /// service (ServiceCounters::accept_errors_*). `fatal` marks failures
  /// that killed an accept loop.
  void RecordAcceptError(bool fatal);

  /// Records a connection reaped by a wire server's lifecycle timeouts
  /// (ServiceCounters::connections_reaped_*). `write_stall` separates the
  /// slow-loris/never-drains case from plain idleness.
  void RecordConnectionReaped(bool write_stall);

  /// The back-off hint (milliseconds) wire servers attach to
  /// ResourceExhausted responses, for the default tenant. Derived from
  /// live admission state — the measured mean service time, how full the
  /// queue is, and how many slots drain it — plus ±25% jitter so a burst
  /// of rejected clients doesn't come back as a synchronized thundering
  /// herd.
  uint64_t RetryAfterMsHint() const;

  /// Quota-aware variant: when the named tenant has an in-flight quota,
  /// the hint is derived from *its* queue depth, slot count, and mean
  /// service time — a throttled tenant's clients back off on their own
  /// tenant's congestion, not the (possibly idle) global queue. Falls
  /// back to the global hint for unknown names and quota-less tenants.
  uint64_t RetryAfterMsHint(const std::string& kb) const;

  /// The deterministic core of RetryAfterMsHint (pure, unit-testable):
  /// roughly the time for `queued` requests ahead of the caller to drain
  /// through `max_in_flight` slots at `mean_service_ms` each, floored at
  /// 25ms and capped near 10s, scaled by jitter/256 in [0.75, 1.25).
  /// Strictly monotonic in `queued` (at fixed jitter) until the cap.
  static uint64_t ComputeRetryAfterMs(size_t queued, size_t max_in_flight,
                                      double mean_service_ms,
                                      uint32_t jitter256);

  /// Malformed N-Triples lines skipped by the default tenant's current
  /// lenient open (0 for other formats). Callers surface this so silent
  /// data loss stays visible.
  size_t parse_skipped_lines() const;

 private:
  Service(LoadedKb loaded, const ServiceOptions& options);

  /// Blocks until an execution slot is free for `tenant` (or the
  /// deadline expires / a queue overflows). Both gates — the global
  /// bound and the tenant's quota — are checked under the one admission
  /// mutex. OK = admitted; caller must Release(tenant).
  Status Admit(Tenant& tenant, const Deadline& deadline,
               const CancellationToken& cancel, double* queue_wait_seconds);
  void Release(Tenant& tenant);

  static void EnsureNameIndex(const KbEpoch& epoch);
  static Result<TermId> ResolveTargetIn(const KbEpoch& epoch,
                                        const std::string& name);
  static Result<std::vector<TermId>> ResolveTargetsIn(const KbEpoch& epoch,
                                                      const TargetSpec& spec);

  /// Maps one RemiResult into a MineResponse (status, text, labels), all
  /// rendered under `epoch` so the response is self-contained.
  MineResponse BuildMineResponse(const KbEpoch& epoch, const RemiResult& mined,
                                 bool verbalize,
                                 std::vector<TermId> targets) const;

  /// Counts one request shed for an expired deadline before any mining
  /// work ran (global + tenant). Caller holds admission_mu_.
  void RecordShedLocked(Tenant& tenant);
  /// Feeds one queue-wait sample into the brownout window and updates
  /// brownout_active_ (enter above the p99 bound, exit below half of
  /// it). Caller holds admission_mu_; no-op when brownout is disabled.
  void RecordQueueWaitLocked(double wait_seconds);
  /// The queue depth currently enforced by the global gate: max_queued,
  /// tightened to brownout_queue_fraction * max_queued while browned
  /// out. Caller holds admission_mu_.
  size_t EffectiveMaxQueuedLocked() const;

  Deadline DeadlineFor(const RequestControl& control) const;
  /// Counts one admitted run's outcome into the global and the tenant
  /// counters (the two views always reconcile).
  void CountOutcome(Tenant& tenant, const Status& status);
  /// Folds one admitted run into the service-wide + tenant mining
  /// aggregates.
  void RecordMiningStats(Tenant& tenant, const RemiStats& stats,
                         double mine_seconds);

  ServiceOptions options_;
  std::unique_ptr<ThreadPool> pool_;  ///< iff mining.num_threads > 1

  /// Live-epoch gauge shared with every tenant's every KbEpoch.
  std::shared_ptr<std::atomic<size_t>> live_epochs_ =
      std::make_shared<std::atomic<size_t>>(0);

  std::unique_ptr<TenantRegistry> registry_;
  /// The "" tenant, cached: it is resolved on every legacy call
  /// (kb(), generation(), ...) and can never be detached.
  std::shared_ptr<Tenant> default_tenant_;

  mutable std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  size_t in_flight_ = 0;
  size_t queued_ = 0;
  size_t peak_in_flight_ = 0;

  // Brownout state, guarded by admission_mu_: a ring of recent queue
  // waits (seconds) whose p99 drives the active flag.
  static constexpr size_t kQueueWaitWindow = 64;
  std::vector<double> queue_wait_ring_;
  size_t queue_wait_pos_ = 0;
  bool brownout_active_ = false;

  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> completed_ok_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> shed_expired_in_queue_{0};
  std::atomic<uint64_t> brownout_rejected_{0};
  std::atomic<uint64_t> connections_reaped_idle_{0};
  std::atomic<uint64_t> connections_reaped_write_stall_{0};
  std::atomic<uint64_t> reloads_ok_{0};
  std::atomic<uint64_t> reloads_rejected_{0};
  std::atomic<uint64_t> accept_errors_retried_{0};
  std::atomic<uint64_t> accept_errors_fatal_{0};
  std::atomic<uint64_t> nodes_visited_total_{0};
  std::atomic<uint64_t> mine_micros_total_{0};
};

}  // namespace remi
