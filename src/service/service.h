// remi::Service — the stable serving façade of the library.
//
// The paper's cost-vs-users scenario (Table 2) and the entity-summarization
// application (§5) both presume a single KB instance answering many
// heterogeneous requests. Service packages that: it owns one KnowledgeBase
// (opened uniformly from .nt/.ttl/.rkf/.rkf2 via KbSpec, or adopted from
// memory), one long-lived work-stealing thread pool, and one shared
// match-set cache, and exposes typed request/response contracts. Consumers
// (the CLI, the line-protocol server, examples, harnesses) talk to this
// API only; the layers below (RemiMiner, Evaluator, Verbalizer, the
// summarizer) are implementation detail they no longer wire up by hand.
//
// Contracts:
//   * Every request carries a RequestControl: a relative deadline and a
//     cooperative cancellation token. Both are threaded through the
//     REMI/P-REMI DFS (polled at every search node, including spilled
//     subtree tasks), so an expired request stops within one node
//     evaluation instead of running unbounded.
//   * Request-level failures (bad targets, capacity) are the error side of
//     the returned Result. Execution outcomes of an *admitted* run —
//     kOk, kDeadlineExceeded, kCancelled — are reported in-band as
//     `response.status`, alongside the partial ServiceStats/RemiStats the
//     run accumulated before it was interrupted.
//   * Admission control bounds concurrency: at most max_in_flight requests
//     execute while up to max_queued callers wait; one more caller gets
//     kResourceExhausted immediately.
//
// See README.md "Serving & the Service API" for the full status-code
// table.

#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "kb/knowledge_base.h"
#include "remi/remi.h"
#include "summ/remi_summarizer.h"
#include "util/cancellation.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace remi {

/// \brief Where and how to open a knowledge base.
///
/// The format is sniffed from the file: first by magic bytes (RKF2
/// snapshots, RKF1 containers), then by extension (.ttl/.turtle parse as
/// Turtle; everything else as N-Triples). This replaces the per-consumer
/// format plumbing that used to live in the CLI.
struct KbSpec {
  std::string path;
  /// Build options for text/RKF1 inputs. An .rkf2 snapshot carries its
  /// own build options and ignores these.
  KbOptions kb;
  /// N-Triples only: skip malformed lines instead of failing.
  bool lenient_parse = true;
};

/// \brief Server-wide configuration.
struct ServiceOptions {
  /// Base mining configuration. `mining.num_threads` sizes the Service's
  /// shared pool (>1 enables P-REMI and concurrent batch items);
  /// `mining.eval_cache_capacity/shards` size the shared match-set cache.
  /// Per-request overrides replace only the cost model / language bias.
  RemiOptions mining;

  /// Requests executing concurrently before callers queue. 0 = unlimited
  /// (no admission control; max_queued is then ignored).
  size_t max_in_flight = 4;

  /// Callers allowed to wait for a slot; the next one is rejected with
  /// kResourceExhausted.
  size_t max_queued = 16;
};

/// \brief Per-request execution control.
struct RequestControl {
  /// Wall-clock budget in seconds, measured from admission (queue wait
  /// counts against it); 0 = no deadline.
  double deadline_seconds = 0.0;
  /// Cooperative cancellation; see util/cancellation.h.
  CancellationToken cancel;
};

/// \brief One target set, as dictionary ids and/or lexical forms.
///
/// Lexical forms are full IRIs or unambiguous IRI suffixes ("Paris"
/// resolves to <http://dbpedia.org/resource/Paris> when unique at a '/'
/// or '#' boundary). Ids and names are merged; duplicates are fine.
struct TargetSpec {
  std::vector<TermId> ids;
  std::vector<std::string> names;
};

/// \brief Mine the most intuitive referring expression for one target set.
struct MineRequest {
  TargetSpec targets;
  /// Allowed non-target matches (0 = strict RE; paper §6 future work).
  size_t max_exceptions = 0;
  /// Also render the result as an English-ish sentence.
  bool verbalize = false;
  /// Per-request cost-model override (e.g. Ĉpr instead of the service
  /// default). Variant miners share the pool and the match-set cache.
  std::optional<CostModelOptions> cost;
  /// Per-request language-bias override (e.g. atoms-only).
  std::optional<EnumeratorOptions> enumerator;
  RequestControl control;
};

/// Timing breakdown of one request's trip through the Service.
struct ServiceStats {
  double queue_wait_seconds = 0.0;  ///< admission queue
  double resolve_seconds = 0.0;     ///< lexical target resolution
  double mine_seconds = 0.0;        ///< time inside the miner
};

struct MineResponse {
  /// Execution outcome: OK, DeadlineExceeded, or Cancelled. Interrupted
  /// runs still carry the partial stats below.
  Status status;
  bool found = false;
  double cost = 0.0;
  std::vector<TermId> targets;  ///< resolved, sorted, deduplicated
  Expression expression;
  std::string expression_text;
  std::string verbalization;  ///< filled iff request.verbalize
  std::vector<TermId> exceptions;
  std::vector<std::string> exception_labels;
  /// Search counters of this run. Caveat: the eval sub-stats (cache
  /// hits/misses, evaluations) are deltas over counters shared by all
  /// concurrent requests on this service, so under concurrency they may
  /// include sibling requests' evaluator activity (same caveat as
  /// RemiMiner::MineBatch).
  RemiStats stats;
  ServiceStats service;
};

/// \brief Mine many independent target sets in one request (the paper's
/// many-users workload). The deadline and the admission slot cover the
/// whole batch.
struct BatchMineRequest {
  std::vector<TargetSpec> target_sets;
  size_t max_exceptions = 0;
  bool verbalize = false;
  std::optional<CostModelOptions> cost;
  std::optional<EnumeratorOptions> enumerator;
  RequestControl control;
};

struct BatchMineResponse {
  /// OK, or DeadlineExceeded/Cancelled when the batch was interrupted
  /// (individual results then also carry their own per-run status).
  Status status;
  std::vector<MineResponse> results;
  ServiceStats service;
};

/// \brief Top-k most intuitive atoms of one entity (Table 3 protocol:
/// standard language, no rdf:type, no inverse predicates).
struct SummarizeRequest {
  TargetSpec entity;  ///< must resolve to exactly one entity
  size_t k = 5;
  ProminenceMetric metric = ProminenceMetric::kFrequency;
  RequestControl control;
};

struct SummarizeResponse {
  Status status;
  TermId entity = kNullTerm;
  std::string entity_label;
  Summary items;
  std::vector<std::string> item_labels;  ///< "predicate = object" per item
  ServiceStats service;
};

/// \brief The ranked candidate queue (Alg. 1 line 2) for a target set —
/// the introspection surface used by demos and the user-study harnesses.
struct CandidatesRequest {
  TargetSpec targets;
  /// Keep only the cheapest `limit` candidates; 0 = all.
  size_t limit = 0;
  std::optional<CostModelOptions> cost;
  std::optional<EnumeratorOptions> enumerator;
  /// Deadline/cancellation, polled during the Ĉ-costing pass (candidates
  /// bypass admission control, so this is the only bound on the call).
  RequestControl control;
};

/// Service-wide request counters (monotonic since construction). At
/// quiescence, admitted == completed_ok + deadline_exceeded + cancelled
/// + failed; rejected requests were never admitted.
struct ServiceCounters {
  uint64_t admitted = 0;
  uint64_t completed_ok = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t cancelled = 0;
  uint64_t rejected = 0;  ///< kResourceExhausted at admission
  uint64_t failed = 0;    ///< admitted but invalid (bad targets etc.)
  size_t in_flight = 0;
  size_t peak_in_flight = 0;
};

/// \brief One KB, one pool, one cache — many requests.
///
/// Thread-safe: any number of threads may issue requests concurrently;
/// admission control bounds how many actually execute. The Service owns
/// its KnowledgeBase; keep it alive as long as responses' Expression
/// values are in use (their TermIds index the Service's dictionary).
class Service {
 public:
  /// Opens the KB described by `spec` and starts a service on it.
  static Result<std::unique_ptr<Service>> Open(
      const KbSpec& spec, const ServiceOptions& options = {});

  /// Adopts an already built KB (synthetic and curated workloads).
  static std::unique_ptr<Service> Create(KnowledgeBase kb,
                                         const ServiceOptions& options = {});

  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // --- request surface -------------------------------------------------------

  /// Result error: InvalidArgument (empty/ambiguous targets, bad ids),
  /// NotFound (unresolvable name), ResourceExhausted (admission).
  /// Response status: OK | DeadlineExceeded | Cancelled.
  Result<MineResponse> Mine(const MineRequest& request);

  /// Same contract as Mine, over many sets sharing one admission slot.
  Result<BatchMineResponse> BatchMine(const BatchMineRequest& request);

  /// Same contract as Mine: the deadline/cancellation token bound the
  /// queue wait and the atom-costing pass.
  Result<SummarizeResponse> Summarize(const SummarizeRequest& request);

  /// Ranked candidate queue; bypasses admission control (introspection),
  /// but the request's control still bounds the costing pass —
  /// DeadlineExceeded/Cancelled surface as the Result error here since
  /// there is no partial payload to return.
  Result<std::vector<RankedSubgraph>> Candidates(
      const CandidatesRequest& request);

  // --- resolution & introspection -------------------------------------------

  /// Resolves one lexical form (full IRI or unambiguous suffix) to an
  /// entity id. NotFound / InvalidArgument on zero / several matches.
  Result<TermId> ResolveTarget(const std::string& name) const;

  /// Resolves a TargetSpec to a sorted, deduplicated id list; validates
  /// that explicit ids are in the dictionary range.
  Result<std::vector<TermId>> ResolveTargets(const TargetSpec& spec) const;

  const KnowledgeBase& kb() const { return kb_; }
  const ServiceOptions& options() const { return options_; }
  ServiceCounters counters() const;

  /// Malformed N-Triples lines skipped by a lenient Open (0 for other
  /// formats). Callers surface this so silent data loss stays visible.
  size_t parse_skipped_lines() const { return parse_skipped_lines_; }

 private:
  Service(KnowledgeBase kb, const ServiceOptions& options);

  /// Blocks until an execution slot is free (or the deadline expires /
  /// the queue overflows). OK = admitted; caller must Release().
  Status Admit(const Deadline& deadline, const CancellationToken& cancel,
               double* queue_wait_seconds);
  void Release();

  /// The miner for a cost/bias variant, created on first use. All variant
  /// miners share pool_ and eval_cache_.
  RemiMiner* MinerFor(const std::optional<CostModelOptions>& cost,
                      const std::optional<EnumeratorOptions>& enumerator);

  /// Maps one RemiResult into a MineResponse (status, text, labels).
  MineResponse BuildMineResponse(const RemiResult& mined, bool verbalize,
                                 std::vector<TermId> targets) const;

  Deadline DeadlineFor(const RequestControl& control) const;
  void CountOutcome(const Status& status);

  /// Built once on first suffix resolution: IRI local name (after the
  /// last '/' or '#') -> (entity id, number of entities sharing the
  /// name). Keys are views into the dictionary's stable storage. Makes
  /// the common "Paris"-style lookup O(1) instead of a full dictionary
  /// scan per request on the serving path.
  void EnsureLocalNameIndex() const;

  KnowledgeBase kb_;
  ServiceOptions options_;
  size_t parse_skipped_lines_ = 0;
  std::unique_ptr<ThreadPool> pool_;  ///< iff mining.num_threads > 1
  std::shared_ptr<EvalCache> eval_cache_;

  std::mutex miners_mu_;
  std::map<std::string, std::unique_ptr<RemiMiner>> miners_;

  mutable std::once_flag local_name_index_once_;
  mutable std::unordered_map<std::string_view, std::pair<TermId, uint32_t>>
      local_name_index_;

  mutable std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  size_t in_flight_ = 0;
  size_t queued_ = 0;
  size_t peak_in_flight_ = 0;

  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> completed_ok_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> failed_{0};
};

}  // namespace remi
