// remi::Service — the stable serving façade of the library.
//
// The paper's cost-vs-users scenario (Table 2) and the entity-summarization
// application (§5) both presume a single KB instance answering many
// heterogeneous requests. Service packages that: it serves one *current*
// knowledge-base generation (opened uniformly from .nt/.ttl/.rkf/.rkf2 via
// KbSpec, or adopted from memory), one long-lived work-stealing thread
// pool, and exposes typed request/response contracts. Consumers (the CLI,
// the line-protocol server, examples, harnesses) talk to this API only;
// the layers below (RemiMiner, Evaluator, Verbalizer, the summarizer) are
// implementation detail they no longer wire up by hand.
//
// Hot-swap (epoch-pinned snapshot registry):
//   * The KB, its match-set cache, its variant miners, and its lexical
//     name index are bundled into one immutable-once-published KbEpoch,
//     held by shared_ptr. Every request pins the epoch that is current
//     when it starts executing and uses only that epoch's state until it
//     returns — so a concurrent ReloadKb can never change a request's
//     results mid-flight (byte-identical to a no-reload run).
//   * ReloadKb opens and fully validates a candidate KB *off the serving
//     path* (the RKF2 loader's structural-invariant pass, the parsers'
//     error checks), and only then publishes it as generation N+1. A
//     corrupt, truncated, or invariant-violating image fails closed: the
//     response carries an in-band Corruption/ParseError/IoError status
//     and the service keeps serving generation N. No reload ever drops
//     an in-flight or queued request.
//   * Retired generations are destroyed when their last pinned request
//     completes (the shared_ptr count is the drain counter; there is no
//     global pause). Each generation owns its own EvalCache, so stale
//     match sets die with their epoch instead of poisoning the next one.
//
// Contracts:
//   * Every request carries a RequestControl: a relative deadline and a
//     cooperative cancellation token. Both are threaded through the
//     REMI/P-REMI DFS (polled at every search node, including spilled
//     subtree tasks), so an expired request stops within one node
//     evaluation instead of running unbounded.
//   * Request-level failures (bad targets, capacity) are the error side of
//     the returned Result. Execution outcomes of an *admitted* run —
//     kOk, kDeadlineExceeded, kCancelled — are reported in-band as
//     `response.status`, alongside the partial ServiceStats/RemiStats the
//     run accumulated before it was interrupted.
//   * Admission control bounds concurrency: at most max_in_flight requests
//     execute while up to max_queued callers wait; one more caller gets
//     kResourceExhausted immediately.
//
// See README.md "Serving & the Service API" and "Hot-swap & operational
// runbook" for the full status-code table and reload semantics.

#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "kb/knowledge_base.h"
#include "remi/remi.h"
#include "summ/remi_summarizer.h"
#include "util/cancellation.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace remi {

/// \brief Where and how to open a knowledge base.
///
/// The format is sniffed from the file: first by magic bytes (RKF2
/// snapshots, RKF1 containers), then by extension (.ttl/.turtle parse as
/// Turtle; everything else as N-Triples). This replaces the per-consumer
/// format plumbing that used to live in the CLI.
struct KbSpec {
  std::string path;
  /// Build options for text/RKF1 inputs. An .rkf2 snapshot carries its
  /// own build options and ignores these.
  KbOptions kb;
  /// N-Triples only: skip malformed lines instead of failing.
  bool lenient_parse = true;
};

/// \brief Server-wide configuration.
struct ServiceOptions {
  /// Base mining configuration. `mining.num_threads` sizes the Service's
  /// shared pool (>1 enables P-REMI and concurrent batch items);
  /// `mining.eval_cache_capacity/shards` size each generation's
  /// match-set cache. Per-request overrides replace only the cost model /
  /// language bias.
  RemiOptions mining;

  /// Requests executing concurrently before callers queue. 0 = unlimited
  /// (no admission control; max_queued is then ignored).
  size_t max_in_flight = 4;

  /// Callers allowed to wait for a slot; the next one is rejected with
  /// kResourceExhausted.
  size_t max_queued = 16;
};

/// \brief Per-request execution control.
struct RequestControl {
  /// Wall-clock budget in seconds, measured from admission (queue wait
  /// counts against it); 0 = no deadline.
  double deadline_seconds = 0.0;
  /// Cooperative cancellation; see util/cancellation.h.
  CancellationToken cancel;
};

/// \brief One target set, as dictionary ids and/or lexical forms.
///
/// Lexical forms are full IRIs or unambiguous IRI suffixes ("Paris"
/// resolves to <http://dbpedia.org/resource/Paris> when unique at a '/'
/// or '#' boundary). Ids and names are merged; duplicates are fine.
struct TargetSpec {
  std::vector<TermId> ids;
  std::vector<std::string> names;
};

/// \brief Mine the most intuitive referring expression for one target set.
struct MineRequest {
  TargetSpec targets;
  /// Allowed non-target matches (0 = strict RE; paper §6 future work).
  size_t max_exceptions = 0;
  /// Also render the result as an English-ish sentence.
  bool verbalize = false;
  /// Per-request cost-model override (e.g. Ĉpr instead of the service
  /// default). Variant miners share the pool and the match-set cache.
  std::optional<CostModelOptions> cost;
  /// Per-request language-bias override (e.g. atoms-only).
  std::optional<EnumeratorOptions> enumerator;
  RequestControl control;
};

/// Timing breakdown of one request's trip through the Service.
struct ServiceStats {
  double queue_wait_seconds = 0.0;  ///< admission queue
  double resolve_seconds = 0.0;     ///< lexical target resolution
  double mine_seconds = 0.0;        ///< time inside the miner
  /// KB generation this request was pinned to (0 = never pinned, e.g.
  /// expired while queued).
  uint64_t generation = 0;
};

struct MineResponse {
  /// Execution outcome: OK, DeadlineExceeded, or Cancelled. Interrupted
  /// runs still carry the partial stats below.
  Status status;
  bool found = false;
  double cost = 0.0;
  std::vector<TermId> targets;  ///< resolved, sorted, deduplicated
  /// Labels of `targets`, rendered under the request's pinned generation
  /// (wire serialization must not consult the live KB: a concurrent
  /// reload could have swapped it).
  std::vector<std::string> target_labels;
  Expression expression;
  std::string expression_text;
  std::string verbalization;  ///< filled iff request.verbalize
  std::vector<TermId> exceptions;
  std::vector<std::string> exception_labels;
  /// Search counters of this run. Caveat: the eval sub-stats (cache
  /// hits/misses, evaluations) are deltas over counters shared by all
  /// concurrent requests on this service, so under concurrency they may
  /// include sibling requests' evaluator activity (same caveat as
  /// RemiMiner::MineBatch).
  RemiStats stats;
  ServiceStats service;
};

/// \brief Mine many independent target sets in one request (the paper's
/// many-users workload). The deadline and the admission slot cover the
/// whole batch.
struct BatchMineRequest {
  std::vector<TargetSpec> target_sets;
  size_t max_exceptions = 0;
  bool verbalize = false;
  std::optional<CostModelOptions> cost;
  std::optional<EnumeratorOptions> enumerator;
  RequestControl control;
};

struct BatchMineResponse {
  /// OK, or DeadlineExceeded/Cancelled when the batch was interrupted
  /// (individual results then also carry their own per-run status).
  Status status;
  std::vector<MineResponse> results;
  ServiceStats service;
};

/// \brief Top-k most intuitive atoms of one entity (Table 3 protocol:
/// standard language, no rdf:type, no inverse predicates).
struct SummarizeRequest {
  TargetSpec entity;  ///< must resolve to exactly one entity
  size_t k = 5;
  ProminenceMetric metric = ProminenceMetric::kFrequency;
  RequestControl control;
};

struct SummarizeResponse {
  Status status;
  TermId entity = kNullTerm;
  std::string entity_label;
  Summary items;
  std::vector<std::string> item_labels;  ///< "predicate = object" per item
  ServiceStats service;
};

/// \brief The ranked candidate queue (Alg. 1 line 2) for a target set —
/// the introspection surface used by demos and the user-study harnesses.
struct CandidatesRequest {
  TargetSpec targets;
  /// Keep only the cheapest `limit` candidates; 0 = all.
  size_t limit = 0;
  std::optional<CostModelOptions> cost;
  std::optional<EnumeratorOptions> enumerator;
  /// Deadline/cancellation, polled during the Ĉ-costing pass (candidates
  /// bypass admission control, so this is the only bound on the call).
  RequestControl control;
};

/// \brief Swap in a new KB generation without dropping requests.
///
/// The candidate is opened and fully validated off the serving path; only
/// a candidate that passes every structural-invariant check is published.
/// All failures are reported in-band (fail closed, keep serving).
struct ReloadKbRequest {
  KbSpec spec;
};

struct ReloadKbResponse {
  /// OK: the new generation is serving. Corruption / ParseError / IoError:
  /// the candidate was rejected and the previous generation keeps serving
  /// (the fields below then describe that still-serving generation).
  Status status;
  /// The serving generation after the call.
  uint64_t generation = 0;
  size_t facts = 0;
  size_t entities = 0;
  /// Malformed N-Triples lines skipped by a lenient reload (0 otherwise).
  size_t parse_skipped_lines = 0;
  /// Open + validate time of the candidate (even when rejected).
  double load_seconds = 0.0;
};

/// Service-wide request counters (monotonic since construction). At
/// quiescence, admitted == completed_ok + deadline_exceeded + cancelled
/// + failed; rejected requests were never admitted.
struct ServiceCounters {
  uint64_t admitted = 0;
  uint64_t completed_ok = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t cancelled = 0;
  uint64_t rejected = 0;  ///< kResourceExhausted at admission
  uint64_t failed = 0;    ///< admitted but invalid (bad targets etc.)
  size_t in_flight = 0;
  size_t peak_in_flight = 0;
  // --- hot-swap registry ---
  uint64_t reloads_ok = 0;        ///< published generations (beyond the first)
  uint64_t reloads_rejected = 0;  ///< fail-closed ReloadKb calls
  /// The serving generation (starts at 1, +1 per successful reload).
  uint64_t generation = 0;
  /// Epochs still alive: the serving one plus retired generations kept
  /// alive by in-flight pinned requests. 1 at quiescence; a value stuck
  /// above 1 means a retired generation leaked.
  size_t active_generations = 0;
  // --- transport health (reported by the wire servers) ---
  /// accept(2) failures survived and retried (EPROTO, EMFILE bursts, ...).
  /// A growing value with zero new connections is the old zombie-accept
  /// signature, now visible instead of silent.
  uint64_t accept_errors_retried = 0;
  /// accept(2) failures that terminated an accept loop (dead listener).
  uint64_t accept_errors_fatal = 0;
  // --- aggregated mining stats (the "counters" verb's RemiStats view) ---
  uint64_t nodes_visited_total = 0;  ///< DFS nodes across all admitted runs
  uint64_t mine_micros_total = 0;    ///< wall micros inside the miner
};

/// \brief One serving process, many requests, hot-swappable KB generations.
///
/// Thread-safe: any number of threads may issue requests concurrently;
/// admission control bounds how many actually execute, and ReloadKb may
/// run concurrently with all of them. Responses' Expression/TermId values
/// index the dictionary of the generation that produced them — keep the
/// Service alive (and, under concurrent reload, prefer the pre-rendered
/// *_text/*_labels response fields) while using them.
class Service {
 public:
  /// Opens the KB described by `spec` and starts a service on it.
  static Result<std::unique_ptr<Service>> Open(
      const KbSpec& spec, const ServiceOptions& options = {});

  /// Adopts an already built KB (synthetic and curated workloads).
  static std::unique_ptr<Service> Create(KnowledgeBase kb,
                                         const ServiceOptions& options = {});

  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // --- request surface -------------------------------------------------------

  /// Result error: InvalidArgument (empty/ambiguous targets, bad ids),
  /// NotFound (unresolvable name), ResourceExhausted (admission).
  /// Response status: OK | DeadlineExceeded | Cancelled.
  Result<MineResponse> Mine(const MineRequest& request);

  /// Same contract as Mine, over many sets sharing one admission slot.
  Result<BatchMineResponse> BatchMine(const BatchMineRequest& request);

  /// Same contract as Mine: the deadline/cancellation token bound the
  /// queue wait and the atom-costing pass.
  Result<SummarizeResponse> Summarize(const SummarizeRequest& request);

  /// Ranked candidate queue; bypasses admission control (introspection),
  /// but the request's control still bounds the costing pass —
  /// DeadlineExceeded/Cancelled surface as the Result error here since
  /// there is no partial payload to return. When `expression_texts` is
  /// non-null it receives one rendered expression per returned candidate,
  /// produced under the request's pinned generation (safe to serialize
  /// even if a reload lands concurrently).
  Result<std::vector<RankedSubgraph>> Candidates(
      const CandidatesRequest& request,
      std::vector<std::string>* expression_texts = nullptr);

  // --- hot swap --------------------------------------------------------------

  /// Opens + validates `request.spec` off the serving path and, on
  /// success, atomically publishes it as the next generation. Fails
  /// closed: a corrupt/truncated/invariant-violating candidate is
  /// reported in-band (Corruption/ParseError/IoError) and the previous
  /// generation keeps serving. In-flight requests pinned to older
  /// generations are never disturbed; their epochs are destroyed when the
  /// last pinned request completes. Concurrent reloads serialize.
  ReloadKbResponse ReloadKb(const ReloadKbRequest& request);

  // --- resolution & introspection -------------------------------------------

  /// Resolves one lexical form (full IRI or unambiguous suffix) to an
  /// entity id of the *current* generation. NotFound / InvalidArgument on
  /// zero / several matches.
  Result<TermId> ResolveTarget(const std::string& name) const;

  /// Resolves a TargetSpec to a sorted, deduplicated id list; validates
  /// that explicit ids are in the dictionary range.
  Result<std::vector<TermId>> ResolveTargets(const TargetSpec& spec) const;

  /// The current generation's KB. The reference is stable only while no
  /// concurrent ReloadKb retires this generation — single-owner callers
  /// (CLI, tests, examples) may hold it across calls; concurrent servers
  /// should pin via SharedKb() instead.
  const KnowledgeBase& kb() const;

  /// The current generation's KB, pinned: the aliased shared_ptr keeps
  /// the whole epoch (KB + caches) alive even after a reload retires it.
  std::shared_ptr<const KnowledgeBase> SharedKb() const;

  /// The serving generation number (1-based, +1 per successful reload).
  uint64_t generation() const;

  const ServiceOptions& options() const { return options_; }
  ServiceCounters counters() const;

  /// Records an accept(2) failure observed by a wire server fronting this
  /// service (ServiceCounters::accept_errors_*). `fatal` marks failures
  /// that killed an accept loop.
  void RecordAcceptError(bool fatal);

  /// The back-off hint (milliseconds) wire servers attach to
  /// ResourceExhausted responses. Derived from live admission state — the
  /// measured mean service time, how full the queue is, and how many
  /// slots drain it — plus ±25% jitter so a burst of rejected clients
  /// doesn't come back as a synchronized thundering herd.
  uint64_t RetryAfterMsHint() const;

  /// The deterministic core of RetryAfterMsHint (pure, unit-testable):
  /// roughly the time for `queued` requests ahead of the caller to drain
  /// through `max_in_flight` slots at `mean_service_ms` each, floored at
  /// 25ms and capped near 10s, scaled by jitter/256 in [0.75, 1.25).
  /// Strictly monotonic in `queued` (at fixed jitter) until the cap.
  static uint64_t ComputeRetryAfterMs(size_t queued, size_t max_in_flight,
                                      double mean_service_ms,
                                      uint32_t jitter256);

  /// Malformed N-Triples lines skipped by the current generation's
  /// lenient open (0 for other formats). Callers surface this so silent
  /// data loss stays visible.
  size_t parse_skipped_lines() const;

 private:
  /// One KB generation and everything whose lifetime must match it: the
  /// per-generation match-set cache (so stale entries die with their
  /// epoch), the lazily built variant miners (they hold raw pointers into
  /// `kb`), and the lazily built lexical name index (its keys are views
  /// into `kb`'s dictionary storage). Published epochs are structurally
  /// immutable; the mutable members below are internal lazy caches with
  /// their own synchronization.
  struct KbEpoch {
    KbEpoch(KnowledgeBase kb_in, uint64_t generation_in,
            const ServiceOptions& options,
            std::shared_ptr<std::atomic<size_t>> live_epochs_in);
    ~KbEpoch();
    KbEpoch(const KbEpoch&) = delete;
    KbEpoch& operator=(const KbEpoch&) = delete;

    const KnowledgeBase kb;
    const uint64_t generation;
    size_t parse_skipped_lines = 0;
    /// Per-generation match-set cache: entries can never outlive (or
    /// cross into) another generation's KB.
    std::shared_ptr<EvalCache> eval_cache;

    /// The miner for a cost/bias variant, created on first use. All
    /// variant miners of one epoch share the service pool and this
    /// epoch's cache.
    mutable std::mutex miners_mu;
    mutable std::map<std::string, std::unique_ptr<RemiMiner>> miners;

    /// Built once on first suffix resolution: IRI local name (after the
    /// last '/' or '#') -> (entity id, number of entities sharing the
    /// name). Keys are views into this epoch's dictionary storage. Makes
    /// the common "Paris"-style lookup O(1) instead of a full dictionary
    /// scan per request on the serving path.
    mutable std::once_flag name_index_once;
    mutable std::unordered_map<std::string_view, std::pair<TermId, uint32_t>>
        name_index;

    /// Shared live-epoch gauge (ServiceCounters::active_generations);
    /// shared_ptr so a pinned epoch outliving the Service stays safe.
    std::shared_ptr<std::atomic<size_t>> live_epochs;
  };

  /// A KB opened from disk, before it becomes an epoch.
  struct LoadedKb {
    KnowledgeBase kb;
    size_t parse_skipped_lines = 0;
  };

  Service(KnowledgeBase kb, const ServiceOptions& options);

  /// Opens `spec` with format sniffing and full validation (the RKF2
  /// structural-invariant pass, the parsers' error checks). Pure: touches
  /// no Service state, so ReloadKb can run it off the serving path.
  static Result<LoadedKb> LoadKb(const KbSpec& spec);

  /// The serving epoch; the returned shared_ptr is the caller's pin.
  std::shared_ptr<KbEpoch> CurrentEpoch() const;

  /// Blocks until an execution slot is free (or the deadline expires /
  /// the queue overflows). OK = admitted; caller must Release().
  Status Admit(const Deadline& deadline, const CancellationToken& cancel,
               double* queue_wait_seconds);
  void Release();

  RemiMiner* MinerFor(const KbEpoch& epoch,
                      const std::optional<CostModelOptions>& cost,
                      const std::optional<EnumeratorOptions>& enumerator);

  static void EnsureNameIndex(const KbEpoch& epoch);
  static Result<TermId> ResolveTargetIn(const KbEpoch& epoch,
                                        const std::string& name);
  static Result<std::vector<TermId>> ResolveTargetsIn(const KbEpoch& epoch,
                                                      const TargetSpec& spec);

  /// Maps one RemiResult into a MineResponse (status, text, labels), all
  /// rendered under `epoch` so the response is self-contained.
  MineResponse BuildMineResponse(const KbEpoch& epoch, const RemiResult& mined,
                                 bool verbalize,
                                 std::vector<TermId> targets) const;

  Deadline DeadlineFor(const RequestControl& control) const;
  void CountOutcome(const Status& status);
  /// Folds one admitted run into the service-wide mining aggregates.
  void RecordMiningStats(const RemiStats& stats, double mine_seconds);

  ServiceOptions options_;
  std::unique_ptr<ThreadPool> pool_;  ///< iff mining.num_threads > 1

  /// Live-epoch gauge shared with every KbEpoch (see KbEpoch::live_epochs).
  std::shared_ptr<std::atomic<size_t>> live_epochs_ =
      std::make_shared<std::atomic<size_t>>(0);

  /// The snapshot registry: the serving epoch, swapped by ReloadKb.
  mutable std::mutex epoch_mu_;
  std::shared_ptr<KbEpoch> epoch_;

  /// Serializes ReloadKb calls (generation numbering + publish order).
  std::mutex reload_mu_;

  mutable std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  size_t in_flight_ = 0;
  size_t queued_ = 0;
  size_t peak_in_flight_ = 0;

  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> completed_ok_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> reloads_ok_{0};
  std::atomic<uint64_t> reloads_rejected_{0};
  std::atomic<uint64_t> accept_errors_retried_{0};
  std::atomic<uint64_t> accept_errors_fatal_{0};
  std::atomic<uint64_t> nodes_visited_total_{0};
  std::atomic<uint64_t> mine_micros_total_{0};
};

}  // namespace remi
