#include "service/event_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "service/json_codec.h"
#include "util/io_hooks.h"

namespace remi {

namespace {

// epoll_event.data.u64 tags for the two non-connection fds.
constexpr uint64_t kListenTag = 0;
constexpr uint64_t kWakeTag = 1;

constexpr int kListenerBackoffMs = 100;

}  // namespace

EventServer::EventServer(Service* service, const EventServerOptions& options)
    : service_(service), options_(options) {
  if (options_.dispatch_threads == 0) options_.dispatch_threads = 1;
  if (options_.max_inflight_per_connection == 0) {
    options_.max_inflight_per_connection = 1;
  }
}

EventServer::~EventServer() { Stop(); }

Status EventServer::Start() {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  auto fail = [this](const std::string& what) {
    const Status status = Status::IoError(what + ": " + std::strerror(errno));
    if (listen_fd_ >= 0) close(listen_fd_);
    if (epoll_fd_ >= 0) close(epoll_fd_);
    if (wake_fd_ >= 0) close(wake_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    return status;
  };
  const int enable = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    return fail("bind");
  }
  if (listen(listen_fd_, options_.backlog) != 0) return fail("listen");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  epoll_fd_ = epoll_create1(0);
  if (epoll_fd_ < 0) return fail("epoll_create1");
  wake_fd_ = eventfd(0, EFD_NONBLOCK);
  if (wake_fd_ < 0) return fail("eventfd");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenTag;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return fail("epoll_ctl(listener)");
  }
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return fail("epoll_ctl(eventfd)");
  }
  listener_active_ = true;

  stop_requested_.store(false, std::memory_order_relaxed);
  drain_requested_.store(false, std::memory_order_relaxed);
  workers_.reserve(options_.dispatch_threads);
  for (size_t i = 0; i < options_.dispatch_threads; ++i) {
    workers_.emplace_back([this] { WorkerThread(); });
  }
  loop_thread_ = std::thread([this] { LoopThread(); });
  return Status::OK();
}

void EventServer::Stop() {
  if (!loop_thread_.joinable() && workers_.empty()) return;
  stop_requested_.store(true, std::memory_order_relaxed);
  // Bound the shutdown: every dispatched request carries this token, so a
  // deadline-less mining run returns Cancelled within one DFS node.
  cancel_source_.RequestCancellation();
  Wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    workers_stopping_ = true;
  }
  dispatch_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    // Workers may have pushed completions after the loop exited; the
    // connections are gone, so the bytes are undeliverable.
    std::lock_guard<std::mutex> lock(completions_mu_);
    completions_.clear();
  }
  if (wake_fd_ >= 0) {
    close(wake_fd_);
    wake_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    close(epoll_fd_);
    epoll_fd_ = -1;
  }
  // The loop closes the listener and every connection before exiting.
}

bool EventServer::Drain(double grace_seconds) {
  drain_requested_.store(true, std::memory_order_relaxed);
  Wake();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(grace_seconds));
  bool all_done;
  for (;;) {
    all_done = open_connections_.load(std::memory_order_relaxed) == 0;
    if (all_done || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // Grace used up (or everything finished): either way the server ends
  // fully stopped, mirroring LineServer::Drain.
  Stop();
  return all_done;
}

void EventServer::Wake() {
  if (wake_fd_ < 0) return;
  const uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n = write(wake_fd_, &one, sizeof(one));
}

void EventServer::PushCompletion(Completion completion) {
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    completions_.push_back(std::move(completion));
  }
  Wake();
}

void EventServer::WorkerThread() {
  const CancellationToken cancel = cancel_source_.token();
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(dispatch_mu_);
      dispatch_cv_.wait(lock, [this] {
        return workers_stopping_ || !dispatch_queue_.empty();
      });
      if (workers_stopping_ && dispatch_queue_.empty()) return;
      item = std::move(dispatch_queue_.front());
      dispatch_queue_.pop_front();
    }
    std::string out;
    if (item.request.binary) {
      const std::string payload =
          HandleFramePayload(service_, item.request.verb, item.request.data,
                             cancel, item.default_kb);
      // Responses echo the request's verb and id — that is the whole
      // multiplexing contract.
      AppendFrame(item.request.verb, item.request.request_id, payload, &out);
    } else {
      out = HandleRequestLine(service_, item.request.data, cancel,
                              item.default_kb);
      out.push_back('\n');
    }
    PushCompletion({item.conn_id, std::move(out)});
  }
}

void EventServer::LoopThread() {
  std::vector<epoll_event> events(64);
  for (;;) {
    int timeout_ms = -1;
    if (listener_paused_ && listen_fd_ < 0) listener_paused_ = false;
    if (listener_paused_) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= listener_paused_until_) {
        // Re-arm the listener after the resource-exhaustion backoff.
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = kListenTag;
        if (listen_fd_ >= 0 &&
            epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0) {
          listener_paused_ = false;
        } else {
          listener_paused_until_ =
              now + std::chrono::milliseconds(kListenerBackoffMs);
          timeout_ms = kListenerBackoffMs;
        }
      } else {
        timeout_ms = static_cast<int>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                listener_paused_until_ - now)
                .count() +
            1);
      }
    }
    // The wheel's earliest deadline bounds the sleep so reaps are not
    // deferred until the next network event.
    const int wheel_delay =
        timer_wheel_.NextDelayMs(std::chrono::steady_clock::now());
    if (wheel_delay >= 0 && (timeout_ms < 0 || wheel_delay < timeout_ms)) {
      timeout_ms = wheel_delay;
    }
    const int n =
        io::Hooks().EpollWait(epoll_fd_, events.data(),
                              static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "event_server: epoll_wait: %s\n",
                   std::strerror(errno));
      break;
    }
    ReapExpired(std::chrono::steady_clock::now());
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[static_cast<size_t>(i)].data.u64;
      const uint32_t mask = events[static_cast<size_t>(i)].events;
      if (tag == kListenTag) {
        AcceptReady();
        continue;
      }
      if (tag == kWakeTag) {
        uint64_t drained;
        while (read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      // A connection closed earlier in this batch leaves stale events
      // behind; ids are never reused, so the lookup just misses.
      auto it = connections_.find(tag);
      if (it == connections_.end()) continue;
      Connection* conn = it->second.get();
      if (mask & EPOLLERR) {
        CloseConnection(conn);
        continue;
      }
      if (mask & (EPOLLIN | EPOLLHUP)) ReadReady(conn);
      if (mask & EPOLLHUP) {
        // Full hangup: the peer closed both directions, nothing we
        // buffer can be delivered. (A drain half-close is EOF via
        // recv() == 0, not EPOLLHUP, and takes the graceful path.)
        auto again = connections_.find(tag);
        if (again != connections_.end()) CloseConnection(again->second.get());
        continue;
      }
      auto still = connections_.find(tag);
      if (still == connections_.end()) continue;
      conn = still->second.get();
      if (mask & EPOLLOUT) FlushAndUpdate(conn);
    }
    HandleCompletions();
    HandleControl();
    if (stop_requested_.load(std::memory_order_relaxed)) break;
  }

  // Hard stop: close everything the loop owns.
  std::vector<Connection*> open;
  open.reserve(connections_.size());
  for (auto& entry : connections_) open.push_back(entry.second.get());
  for (Connection* conn : open) CloseConnection(conn);
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

void EventServer::HandleControl() {
  if (!drain_requested_.load(std::memory_order_relaxed)) return;
  drain_requested_.store(false, std::memory_order_relaxed);
  // Stop the intake: new clients get ECONNREFUSED instead of queueing
  // behind a server that will never serve them.
  if (listen_fd_ >= 0) {
    if (listener_active_ && !listener_paused_) {
      epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    }
    listener_active_ = false;
    listener_paused_ = false;
    close(listen_fd_);
    listen_fd_ = -1;
  }
  // Half-close every connection: the next recv() returns 0 once the
  // bytes the client already sent are drained — requests already decoded
  // or buffered keep executing and their responses still flush.
  for (auto& entry : connections_) {
    Connection* conn = entry.second.get();
    if (conn->fd >= 0 && !conn->read_closed) shutdown(conn->fd, SHUT_RD);
  }
}

void EventServer::AcceptReady() {
  for (;;) {
    const int fd =
        io::Hooks().Accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      const int err = errno;
      if (err == EAGAIN || err == EWOULDBLOCK) return;  // backlog drained
      switch (ClassifyAcceptError(err)) {
        case AcceptErrorAction::kRetry:
          continue;
        case AcceptErrorAction::kRetryCounted:
          service_->RecordAcceptError(/*fatal=*/false);
          std::fprintf(stderr, "event_server: accept: %s; continuing\n",
                       std::strerror(err));
          continue;
        case AcceptErrorAction::kRetryAfterBackoff:
          // Pull the listener out of epoll for a beat instead of
          // sleeping: a blocked loop thread would stall every open
          // connection, not just the intake.
          service_->RecordAcceptError(/*fatal=*/false);
          std::fprintf(stderr, "event_server: accept: %s; backing off\n",
                       std::strerror(err));
          if (!listener_paused_ &&
              epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr) == 0) {
            listener_paused_ = true;
            listener_paused_until_ =
                std::chrono::steady_clock::now() +
                std::chrono::milliseconds(kListenerBackoffMs);
          }
          return;
        case AcceptErrorAction::kFatal:
          // The listener fd itself is broken; open connections keep
          // being served, the intake is gone.
          service_->RecordAcceptError(/*fatal=*/true);
          std::fprintf(stderr,
                       "event_server: accept: %s; listener shut down\n",
                       std::strerror(err));
          if (listener_active_ && !listener_paused_) {
            epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
          }
          listener_active_ = false;
          listener_paused_ = false;
          close(listen_fd_);
          listen_fd_ = -1;
          return;
      }
    }
    try {
      auto conn = std::make_unique<Connection>();
      conn->id = next_conn_id_++;
      conn->fd = fd;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = conn->id;
      if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
        close(fd);
        service_->RecordAcceptError(/*fatal=*/false);
        continue;
      }
      conn->armed_mask = EPOLLIN;
      const auto now = std::chrono::steady_clock::now();
      conn->accepted_at = now;
      conn->last_read_activity = now;
      conn->last_write_progress = now;
      Connection* raw = conn.get();
      connections_.emplace(raw->id, std::move(conn));
      open_connections_.fetch_add(1, std::memory_order_relaxed);
      ScheduleLifecycle(raw);
    } catch (const std::exception& e) {
      close(fd);
      service_->RecordAcceptError(/*fatal=*/false);
      std::fprintf(stderr, "event_server: connection setup: %s; shed\n",
                   e.what());
    }
  }
}

void EventServer::ReadReady(Connection* conn) {
  const uint64_t id = conn->id;
  if (conn->fd < 0 || conn->read_closed) {
    MaybeFinish(conn);  // may close (and free) the connection
    auto it = connections_.find(id);
    if (it != connections_.end()) FlushAndUpdate(it->second.get());
    return;
  }
  char chunk[16384];
  // Bounded per event so one firehose client cannot starve the rest;
  // level-triggered epoll re-fires for what is left.
  for (int round = 0; round < 4; ++round) {
    const ssize_t n = io::Hooks().Recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConnection(conn);
      return;
    }
    if (n == 0) {
      conn->read_closed = true;
      break;
    }
    conn->last_read_activity = std::chrono::steady_clock::now();
    IngestBytes(conn, chunk, static_cast<size_t>(n));
    if (conn->poisoned) break;
    if (static_cast<size_t>(n) < sizeof(chunk)) break;
    // Backpressure applies mid-event too: stop pulling bytes the moment
    // the write buffer crosses its budget.
    if (conn->write_buffer.PendingSize() + conn->read_buffer.PendingSize() >
        options_.max_write_buffer_bytes) {
      break;
    }
  }
  MaybeDispatch(conn);
  MaybeFinish(conn);  // may close (and free) the connection
  auto it = connections_.find(id);
  if (it != connections_.end()) FlushAndUpdate(it->second.get());
}

void EventServer::IngestBytes(Connection* conn, const char* data, size_t n) {
  if (conn->mode == WireMode::kUnknown) {
    conn->mode = SniffWireMode(data[0]);
    if (conn->mode == WireMode::kBinary) {
      conn->decoder =
          std::make_unique<FrameDecoder>(options_.max_frame_payload_bytes);
    } else if (conn->mode == WireMode::kInvalid) {
      // Not a protocol we speak; answer in the human-readable one.
      conn->poisoned = true;
      conn->read_closed = true;
      conn->final_error =
          StatusToJson(Status::InvalidArgument(
                           "unrecognized protocol: expected a binary frame "
                           "('R') or an NDJSON request ('{')"))
              .Dump() +
          "\n";
      return;
    }
  }
  if (conn->mode == WireMode::kBinary) {
    conn->decoder->Feed(std::string_view(data, n));
    IngestFrames(conn);
  } else {
    conn->read_buffer.Append(data, n);
    IngestNdjson(conn);
  }
}

void EventServer::IngestNdjson(Connection* conn) {
  for (;;) {
    const std::string_view pending = conn->read_buffer.Pending();
    const size_t newline = pending.find('\n');
    if (newline == std::string_view::npos) break;
    std::string_view line = pending.substr(0, newline);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.size() > options_.max_line_bytes) {
      conn->poisoned = true;
      conn->read_closed = true;
      conn->final_error =
          StatusToJson(Status::InvalidArgument(
                           "request line exceeds " +
                           std::to_string(options_.max_line_bytes) +
                           " bytes"))
              .Dump() +
          "\n";
      return;
    }
    PendingRequest request;
    request.binary = false;
    request.data.assign(line.data(), line.size());
    conn->queue.push_back(std::move(request));
    conn->read_buffer.Consume(newline + 1);
  }
  if (conn->read_buffer.PendingSize() > options_.max_line_bytes) {
    conn->poisoned = true;
    conn->read_closed = true;
    conn->final_error =
        StatusToJson(Status::InvalidArgument(
                         "request line exceeds " +
                         std::to_string(options_.max_line_bytes) + " bytes"))
            .Dump() +
        "\n";
  }
}

void EventServer::IngestFrames(Connection* conn) {
  for (;;) {
    FrameView frame;
    const FrameDecoder::Result result = conn->decoder->Next(&frame);
    if (result == FrameDecoder::Result::kNeedMore) return;
    if (result == FrameDecoder::Result::kError) {
      // Frame boundaries can no longer be trusted: one final error frame
      // (after the already-decoded requests finish), then the stream
      // ends. Verb 0 marks a stream-level error.
      conn->poisoned = true;
      conn->read_closed = true;
      conn->final_error.clear();
      AppendFrame(0, conn->decoder->error_request_id(),
                  StatusToJson(conn->decoder->status()).Dump(),
                  &conn->final_error);
      return;
    }
    PendingRequest request;
    request.binary = true;
    request.verb = frame.verb;
    request.request_id = frame.request_id;
    request.data.assign(frame.payload.data(), frame.payload.size());
    conn->queue.push_back(std::move(request));
  }
}

void EventServer::MaybeDispatch(Connection* conn) {
  const size_t limit = conn->mode == WireMode::kBinary
                           ? options_.max_inflight_per_connection
                           : 1;  // NDJSON responses must stay in order
  bool dispatched = false;
  while (!conn->queue.empty() && conn->inflight < limit) {
    // The kUseKb handshake runs inline on the loop thread, in FIFO order
    // with the frames around it: frames dispatched before it carried the
    // old default (their WorkItem copy), frames after it see the new
    // one. It occupies no dispatch slot — the check is Service::HasKb,
    // which never loads a KB.
    if (conn->queue.front().binary &&
        conn->queue.front().verb ==
            static_cast<uint8_t>(FrameVerb::kUseKb)) {
      const PendingRequest request = std::move(conn->queue.front());
      conn->queue.pop_front();
      HandleUseKb(conn, request);
      continue;
    }
    WorkItem item;
    item.conn_id = conn->id;
    item.request = std::move(conn->queue.front());
    item.default_kb = conn->default_kb;
    conn->queue.pop_front();
    ++conn->inflight;
    {
      std::lock_guard<std::mutex> lock(dispatch_mu_);
      dispatch_queue_.push_back(std::move(item));
    }
    dispatched = true;
  }
  if (dispatched) dispatch_cv_.notify_all();
}

void EventServer::HandleUseKb(Connection* conn,
                              const PendingRequest& request) {
  Status status = Status::OK();
  std::string kb;
  auto parsed = ParseJson(request.data.empty() ? std::string_view("{}")
                                               : std::string_view(
                                                     request.data));
  if (!parsed.ok()) {
    status = parsed.status();
  } else if (!parsed->is_object()) {
    status = Status::InvalidArgument("frame payload must be a JSON object");
  } else {
    const JsonValue* name = parsed->Find("kb");
    if (name == nullptr || !name->is_string()) {
      status = Status::InvalidArgument(
          "use_kb request needs \"kb\" (string; \"\" resets to the "
          "default kb)");
    } else {
      kb = name->AsString();
      // Existence only — a catalog entry still opens lazily on the first
      // request that actually serves from it.
      if (!kb.empty() && !service_->HasKb(kb)) {
        status = Status::NotFound("unknown kb '" + kb + "'");
      }
    }
  }
  std::string payload;
  if (status.ok()) {
    conn->default_kb = kb;
    JsonValue out = StatusToJson(Status::OK());
    out.Set("kb", JsonValue::String(kb));
    payload = out.Dump();
  } else {
    // A failed handshake leaves the previous default in place; the error
    // is request-level (the connection survives).
    payload = StatusToJson(status).Dump();
  }
  std::string frame;
  AppendFrame(request.verb, request.request_id, payload, &frame);
  AppendResponse(conn, frame);
}

void EventServer::MaybeFinish(Connection* conn) {
  if (!conn->read_closed) return;
  if (!conn->queue.empty() || conn->inflight > 0) return;
  if (!conn->final_error.empty()) {
    AppendResponse(conn, conn->final_error);
    conn->final_error.clear();
  }
  if (conn->write_buffer.Empty()) {
    CloseConnection(conn);
  }
  // Otherwise FlushAndUpdate drains the write buffer and closes.
}

void EventServer::FlushAndUpdate(Connection* conn) {
  if (conn->fd < 0) return;
  while (!conn->write_buffer.Empty()) {
    const std::string_view pending = conn->write_buffer.Pending();
    const ssize_t n = io::Hooks().Send(conn->fd, pending.data(),
                                       pending.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConnection(conn);
      return;
    }
    if (n > 0) conn->last_write_progress = std::chrono::steady_clock::now();
    conn->write_buffer.Consume(static_cast<size_t>(n));
  }
  const size_t backlog = conn->write_buffer.PendingSize();
  if (backlog == 0 && conn->read_closed && conn->queue.empty() &&
      conn->inflight == 0) {
    CloseConnection(conn);
    return;
  }
  // Backpressure with hysteresis: pause reads above the budget, resume
  // below half of it.
  if (backlog > options_.max_write_buffer_bytes) {
    conn->reading_paused = true;
  } else if (conn->reading_paused &&
             backlog < options_.max_write_buffer_bytes / 2) {
    conn->reading_paused = false;
  }
  uint32_t mask = 0;
  if (!conn->read_closed && !conn->reading_paused) mask |= EPOLLIN;
  if (backlog > 0) mask |= EPOLLOUT;
  if (mask != conn->armed_mask) {
    epoll_event ev{};
    ev.events = mask;
    ev.data.u64 = conn->id;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
      conn->armed_mask = mask;
    }
  }
  ScheduleLifecycle(conn);
}

void EventServer::CloseConnection(Connection* conn) {
  if (conn->fd >= 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    io::Hooks().Close(conn->fd);
    conn->fd = -1;
  }
  const uint64_t id = conn->id;
  connections_.erase(id);
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
}

void EventServer::AppendResponse(Connection* conn, const std::string& bytes) {
  if (conn->write_buffer.Empty()) {
    // The stall clock measures "bytes owed but not accepted"; it starts
    // when the debt starts, not at whatever stale progress stamp a long-
    // idle connection carries.
    conn->last_write_progress = std::chrono::steady_clock::now();
  }
  conn->write_buffer.Append(bytes);
}

std::chrono::steady_clock::time_point EventServer::LifecycleDeadline(
    const Connection& conn, bool* write_stall) const {
  using Clock = std::chrono::steady_clock;
  Clock::time_point deadline = Clock::time_point::max();
  *write_stall = false;
  if (options_.write_stall_timeout_ms > 0 && !conn.write_buffer.Empty()) {
    deadline = conn.last_write_progress +
               std::chrono::milliseconds(options_.write_stall_timeout_ms);
    *write_stall = true;
  }
  if (options_.handshake_timeout_ms > 0 && conn.mode == WireMode::kUnknown) {
    const Clock::time_point handshake =
        conn.accepted_at +
        std::chrono::milliseconds(options_.handshake_timeout_ms);
    if (handshake < deadline) {
      deadline = handshake;
      *write_stall = false;
    }
  }
  // Idle only applies when the connection owes us nothing and we owe it
  // nothing in compute: queued or in-flight requests park the clock (the
  // Service's deadline machinery bounds those instead).
  if (options_.idle_timeout_ms > 0 && conn.queue.empty() &&
      conn.inflight == 0) {
    const Clock::time_point idle =
        std::max(conn.last_read_activity, conn.last_write_progress) +
        std::chrono::milliseconds(options_.idle_timeout_ms);
    if (idle < deadline) {
      deadline = idle;
      *write_stall = false;
    }
  }
  return deadline;
}

void EventServer::ScheduleLifecycle(Connection* conn) {
  if (conn->timer_pending || conn->fd < 0) return;
  bool write_stall;
  const auto deadline = LifecycleDeadline(*conn, &write_stall);
  if (deadline == std::chrono::steady_clock::time_point::max()) return;
  timer_wheel_.Schedule(conn->id, deadline);
  conn->timer_pending = true;
}

void EventServer::ReapExpired(std::chrono::steady_clock::time_point now) {
  if (timer_wheel_.size() == 0) return;
  std::vector<uint64_t> due;
  timer_wheel_.PopExpired(now, &due);
  for (const uint64_t id : due) {
    auto it = connections_.find(id);
    if (it == connections_.end()) continue;  // closed; ids never reused
    Connection* conn = it->second.get();
    conn->timer_pending = false;
    // Lazy re-validation: activity since Schedule() moved the real
    // deadline; the popped entry is just a hint to look again.
    bool write_stall;
    const auto deadline = LifecycleDeadline(*conn, &write_stall);
    if (deadline <= now) {
      service_->RecordConnectionReaped(write_stall);
      CloseConnection(conn);
      continue;
    }
    ScheduleLifecycle(conn);
  }
}

void EventServer::HandleCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    auto it = connections_.find(completion.conn_id);
    if (it == connections_.end()) continue;  // connection already gone
    Connection* conn = it->second.get();
    --conn->inflight;
    AppendResponse(conn, completion.bytes);
    MaybeDispatch(conn);
    MaybeFinish(conn);
    // The connection may have just closed (MaybeFinish with an empty
    // write buffer); FlushAndUpdate no-ops on fd < 0 but the map entry
    // is freed, so re-check.
    auto still = connections_.find(completion.conn_id);
    if (still == connections_.end()) continue;
    FlushAndUpdate(still->second.get());
  }
}

}  // namespace remi
