// Small socket-layer utilities shared by the serving transports
// (LineServer, EventServer) and their clients (remi_cli, the load
// generator): a consume-from-the-front byte buffer with amortized O(1)
// compaction, an accept(2) errno classifier, and blocking send/O_NONBLOCK
// helpers. Kept transport-agnostic: nothing here knows about requests,
// framing, or the Service.

#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace remi {

/// \brief An append-at-the-back, consume-at-the-front byte buffer.
///
/// The naive discipline — `buffer.erase(0, consumed)` after every recv —
/// memmoves the whole unconsumed tail once per receive, which is O(n²)
/// for a pipelined client that keeps the buffer non-empty. This buffer
/// tracks a read offset instead and only compacts when the dead prefix is
/// both large (>= kCompactBytes) and at least half the storage, so every
/// byte is moved O(1) times amortized. Both wire transports and the frame
/// decoder use it for their read (and write) queues.
class ConsumedBuffer {
 public:
  void Append(std::string_view data) { storage_.append(data); }
  void Append(const char* data, size_t n) { storage_.append(data, n); }

  /// The unconsumed bytes. Valid until the next Append/Consume/Clear.
  std::string_view Pending() const {
    return std::string_view(storage_).substr(offset_);
  }
  size_t PendingSize() const { return storage_.size() - offset_; }
  bool Empty() const { return offset_ == storage_.size(); }

  /// Marks the first `n` pending bytes consumed (n <= PendingSize()).
  void Consume(size_t n) {
    offset_ += n;
    if (offset_ == storage_.size()) {
      // Cheap full reset; keeps the capacity for the next burst.
      storage_.clear();
      offset_ = 0;
    } else if (offset_ >= kCompactBytes && offset_ >= storage_.size() / 2) {
      storage_.erase(0, offset_);
      offset_ = 0;
    }
  }

  void Clear() {
    storage_.clear();
    offset_ = 0;
  }

  /// Storage currently held (consumed prefix included) — the number the
  /// transports budget against.
  size_t StorageBytes() const { return storage_.size(); }

 private:
  static constexpr size_t kCompactBytes = 64 * 1024;

  std::string storage_;
  size_t offset_ = 0;
};

/// \brief What the accept loop should do about an accept(2) failure.
enum class AcceptErrorAction {
  /// Not an error worth counting (EINTR, ECONNABORTED, EAGAIN): the
  /// connection died before we got it, or the call was interrupted.
  /// Retry immediately.
  kRetry,
  /// A per-connection network error surfaced on the listener (EPROTO,
  /// EPERM, ENETDOWN, ...): the *listener* is healthy. Count it, retry
  /// immediately. Returning instead of retrying here is the classic
  /// zombie-server bug: the process looks alive but never accepts again.
  kRetryCounted,
  /// Transient resource exhaustion (EMFILE, ENFILE, ENOBUFS, ENOMEM):
  /// count it and retry after a short backoff so the loop doesn't spin.
  kRetryAfterBackoff,
  /// The listener itself is gone or unusable (EBADF, EINVAL, ENOTSOCK):
  /// count it (unless shutting down) and exit the loop cleanly.
  kFatal,
};

/// Classifies an accept(2) errno. Unknown errnos map to
/// kRetryAfterBackoff: a counted, logged retry can at worst waste a few
/// wakeups, while treating an unlisted errno as fatal silently turns the
/// server into a zombie (the pre-fix behavior for e.g. EPROTO).
AcceptErrorAction ClassifyAcceptError(int err);

/// Sets O_NONBLOCK on `fd`; false on fcntl failure.
bool SetNonBlocking(int fd);

/// Blocking full-buffer send with EINTR retry; false on a broken
/// connection. MSG_NOSIGNAL turns a peer hangup into EPIPE instead of
/// killing the process.
bool SendAll(int fd, std::string_view data);

}  // namespace remi
