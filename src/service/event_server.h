// An epoll-based nonblocking front end for remi::Service — the
// production transport (LineServer remains as the thread-per-connection
// reference implementation).
//
// One event-loop thread multiplexes every connection through epoll
// (level-triggered) over nonblocking sockets: accept, read, and write
// never block, so per-connection cost is a few KB of buffers instead of a
// dedicated thread and its stack. Request execution happens on a small
// dispatch worker pool (admission control still lives in the Service);
// completed responses are handed back to the loop through a completion
// queue plus an eventfd wakeup, so the loop thread never blocks on a DFS.
//
// Both wire protocols are served on the same port, autodetected from the
// first byte of a connection (SniffWireMode):
//
//   * Binary frames ('R'): length-prefixed, request-id-multiplexed
//     (frame_codec.h). One connection carries many in-flight requests;
//     responses complete out of order and are matched by id. Payloads are
//     the same JSON documents as the NDJSON protocol.
//   * NDJSON ('{' or whitespace): the LineServer debug protocol,
//     byte-compatible — one JSON request per line, responses in order.
//
// Backpressure is explicit in both directions: a connection whose write
// buffer exceeds its budget stops being read (EPOLLIN is dropped until
// the peer drains below half the budget), which in turn fills the
// kernel's receive buffer and stalls the sender's TCP window.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/frame_codec.h"
#include "service/service.h"
#include "service/socket_util.h"
#include "service/timer_wheel.h"
#include "util/status.h"

namespace remi {

struct EventServerOptions {
  /// IPv4 address to bind; loopback by default (the server has no auth).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  int port = 0;
  /// listen(2) backlog.
  int backlog = 128;
  /// NDJSON request lines longer than this poison the connection (one
  /// error response, then close) — same contract as LineServerOptions.
  size_t max_line_bytes = 1 << 20;
  /// Binary frames declaring a longer payload poison the connection
  /// before the payload is buffered (one error frame, then close).
  size_t max_frame_payload_bytes = 1 << 20;
  /// Per-connection write-buffer budget. Above it the connection stops
  /// being read (backpressure); reading resumes below half.
  size_t max_write_buffer_bytes = 4u << 20;
  /// Worker threads executing requests. They block inside the Service's
  /// admission gate (that is the designed queueing point); the loop
  /// thread never does.
  size_t dispatch_threads = 4;
  /// In-flight request cap per *binary* connection; further complete
  /// frames wait decoded in the connection's queue. NDJSON connections
  /// are always serial (responses must come back in order).
  size_t max_inflight_per_connection = 32;
  /// Reap a connection with no queued or in-flight work whose last byte
  /// of progress (read or write) is older than this. 0 disables. Also
  /// the slow-loris bound: a client trickling a request byte-by-byte
  /// must keep each gap under this.
  int idle_timeout_ms = 0;
  /// Reap a connection whose write buffer is non-empty and whose socket
  /// has accepted no bytes for this long (a peer that stopped reading
  /// holds buffer memory forever otherwise). 0 disables.
  int write_stall_timeout_ms = 0;
  /// Reap a connection that has not revealed its wire protocol (sent
  /// its first byte) within this bound. 0 disables. Reaps count as
  /// idle-reaps in the counters.
  int handshake_timeout_ms = 0;
};

/// \brief Accepts connections and serves both wire protocols until
/// Stop(). One-shot, like LineServer: a stopped server cannot restart.
class EventServer {
 public:
  /// \param service the request handler (not owned; must outlive the
  ///        server).
  explicit EventServer(Service* service,
                       const EventServerOptions& options = {});
  ~EventServer();

  EventServer(const EventServer&) = delete;
  EventServer& operator=(const EventServer&) = delete;

  /// Binds, listens, and starts the loop + dispatch threads. IoError on
  /// bind/listen/epoll failure; InvalidArgument on a bad bind address.
  Status Start();

  /// Hard stop: closes the listener and every connection, cancels
  /// in-flight requests (all carry the server's cancellation token),
  /// joins every thread. Idempotent; also run by the destructor.
  void Stop();

  /// Graceful shutdown, same contract as LineServer::Drain: stop
  /// accepting, half-close every connection (SHUT_RD — requests already
  /// received, including frames already admitted to a connection's
  /// queue, keep executing and their responses still flush), wait up to
  /// `grace_seconds`, then cancel whatever is left and hard-stop.
  /// Returns true iff every connection finished within the grace period.
  bool Drain(double grace_seconds);

  /// The bound port (after Start); useful with port 0.
  int port() const { return port_; }

  /// Open connections right now (tests/benchmarks; any thread).
  size_t open_connections() const {
    return open_connections_.load(std::memory_order_relaxed);
  }

 private:
  /// One decoded-but-not-yet-dispatched request.
  struct PendingRequest {
    bool binary = false;
    uint8_t verb = 0;        ///< binary only
    uint64_t request_id = 0; ///< binary only
    std::string data;        ///< NDJSON line or frame payload (owned)
  };

  /// Everything the loop thread tracks per connection. Touched only by
  /// the loop thread; workers refer to connections by id.
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    WireMode mode = WireMode::kUnknown;
    ConsumedBuffer read_buffer;             ///< NDJSON line assembly
    std::unique_ptr<FrameDecoder> decoder;  ///< binary mode only
    ConsumedBuffer write_buffer;
    std::deque<PendingRequest> queue;  ///< decoded, waiting for a slot
    size_t inflight = 0;               ///< dispatched, not yet completed
    uint32_t armed_mask = 0;           ///< epoll events currently armed
    bool reading_paused = false;       ///< write-buffer backpressure
    bool read_closed = false;          ///< EOF seen (or poisoned)
    bool poisoned = false;             ///< stream-level protocol error
    /// The one final response of a poisoned stream (error line/frame),
    /// sent after the requests decoded before the poison finish.
    std::string final_error;
    /// The connection's handshake tenant (binary kUseKb): requests whose
    /// payload has no "kb" member serve from this KB. "" = the default
    /// tenant. Loop-thread-only, like the rest of the struct — workers
    /// get a copy in their WorkItem.
    std::string default_kb;
    // Lifecycle clocks (loop-thread-only, like everything above). The
    // timer wheel holds at most one live entry per connection
    // (timer_pending); activity just moves these deadlines forward and
    // the popped entry re-validates against them.
    std::chrono::steady_clock::time_point accepted_at{};
    std::chrono::steady_clock::time_point last_read_activity{};
    std::chrono::steady_clock::time_point last_write_progress{};
    bool timer_pending = false;
  };

  struct WorkItem {
    uint64_t conn_id = 0;
    PendingRequest request;
    /// The connection's default_kb at dispatch time (copied so a later
    /// handshake cannot race an in-flight request).
    std::string default_kb;
  };

  struct Completion {
    uint64_t conn_id = 0;
    std::string bytes;  ///< fully encoded (frame or line + '\n')
  };

  void LoopThread();
  void WorkerThread();

  // --- loop-thread-only helpers -------------------------------------------
  void AcceptReady();
  void ReadReady(Connection* conn);
  void IngestBytes(Connection* conn, const char* data, size_t n);
  void IngestNdjson(Connection* conn);
  void IngestFrames(Connection* conn);
  /// Moves queued requests to the dispatch pool while slots are free.
  /// kUseKb handshake frames are executed inline here instead (they
  /// mutate per-connection state only the loop thread may touch).
  void MaybeDispatch(Connection* conn);
  /// Executes one kUseKb handshake frame: validates the named KB exists
  /// (Service::HasKb — never loads one), updates conn->default_kb, and
  /// appends the response frame directly to the write buffer.
  void HandleUseKb(Connection* conn, const PendingRequest& request);
  /// Appends the final error and starts the close-after-flush path once a
  /// finished connection (EOF or poisoned) has no queued/in-flight work.
  void MaybeFinish(Connection* conn);
  /// Flushes what the socket accepts now, re-arms epoll to the state the
  /// connection needs (EPOLLIN unless paused/closed, EPOLLOUT iff bytes
  /// remain), applies backpressure transitions, closes once drained.
  void FlushAndUpdate(Connection* conn);
  void CloseConnection(Connection* conn);
  void HandleCompletions();
  void HandleControl();
  /// Appends response bytes and, when the buffer was empty, restarts the
  /// write-progress clock — the stall timeout measures "peer stopped
  /// accepting bytes we owe it", not "buffer happened to be idle".
  void AppendResponse(Connection* conn, const std::string& bytes);
  /// The earliest lifecycle deadline applying to `conn` right now
  /// (time_point::max() when none does); *write_stall reports which
  /// timeout class it is, for the reap counters.
  std::chrono::steady_clock::time_point LifecycleDeadline(
      const Connection& conn, bool* write_stall) const;
  /// Ensures the wheel holds an entry for `conn`'s current deadline
  /// (no-op when one is already pending — lazy re-validation at pop time
  /// absorbs deadline movement).
  void ScheduleLifecycle(Connection* conn);
  /// Pops due wheel entries, re-validates each against the connection's
  /// real deadline, and reaps the ones that are genuinely expired.
  void ReapExpired(std::chrono::steady_clock::time_point now);

  void PushCompletion(Completion completion);
  void Wake();

  Service* service_;
  EventServerOptions options_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int port_ = 0;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;
  /// Cancels every request this server ever dispatched; fired by Stop()
  /// (and by Drain() when the grace period expires).
  CancellationSource cancel_source_;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> drain_requested_{false};
  std::atomic<size_t> open_connections_{0};

  // Loop-thread state.
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_conn_id_ = 2;  ///< 0/1 tag the listener and the eventfd
  bool listener_active_ = false;
  /// Set while the listener is pulled out of epoll to ride out EMFILE-
  /// style resource exhaustion; epoll_wait timeouts re-arm it.
  std::chrono::steady_clock::time_point listener_paused_until_{};
  bool listener_paused_ = false;
  TimerWheel timer_wheel_;

  std::mutex dispatch_mu_;
  std::condition_variable dispatch_cv_;
  std::deque<WorkItem> dispatch_queue_;
  bool workers_stopping_ = false;

  std::mutex completions_mu_;
  std::vector<Completion> completions_;
};

}  // namespace remi
