#include "service/tenant_registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "rdf/ntriples.h"
#include "rdf/rkf.h"
#include "rdf/turtle_lite.h"
#include "util/json.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace remi {

namespace {

/// First bytes of the file, for magic-based format sniffing. Missing or
/// short files return an empty string (the open path reports the error).
std::string ReadMagic(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  char buf[4];
  const size_t got = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  return std::string(buf, got);
}

/// Deterministic cache key of a miner variant: the cost-model and
/// language-bias knobs a request may override.
std::string VariantKey(const CostModelOptions& cost,
                       const EnumeratorOptions& enumerator) {
  std::string key;
  key += 'c';
  key += std::to_string(static_cast<int>(cost.metric));
  key += cost.use_fitted_entity_ranks ? 'f' : '-';
  key += cost.use_join_predicate_ranks ? 'j' : '-';
  key += 'e';
  key += enumerator.extended_language ? 'x' : '-';
  key += enumerator.skip_blank_atoms ? 'b' : '-';
  key += enumerator.prune_prominent_expansion ? 'p' : '-';
  key += std::to_string(enumerator.prominent_object_fraction);
  key += enumerator.include_type_atoms ? 't' : '-';
  key += enumerator.include_inverse_predicates ? 'i' : '-';
  key += std::to_string(enumerator.max_subgraphs);
  return key;
}

}  // namespace

Result<LoadedKb> LoadKbFromSpec(const KbSpec& spec) {
  const std::string magic = ReadMagic(spec.path);
  if (magic == std::string("RKF2", 4)) {
    // OpenSnapshot runs the full structural-invariant validation pass:
    // checksums, section-table bounds, dictionary/CSR cross-invariants.
    // Anything wrong fails here with Corruption, never downstream UB.
    auto kb = KnowledgeBase::OpenSnapshot(spec.path);
    if (!kb.ok()) return WithMessagePrefix(kb.status(), spec.path);
    return LoadedKb{std::move(*kb), 0};
  }
  if (magic == std::string("RKF1", 4)) {
    auto data = ReadRkfFile(spec.path);
    if (!data.ok()) return WithMessagePrefix(data.status(), spec.path);
    return LoadedKb{
        KnowledgeBase::Build(std::move(data->dict), std::move(data->triples),
                             spec.kb),
        0};
  }
  Dictionary dict;
  Result<std::vector<Triple>> triples = Status::Internal("unreachable");
  size_t skipped_lines = 0;
  if (EndsWith(spec.path, ".ttl") || EndsWith(spec.path, ".turtle")) {
    TurtleLiteParser parser(&dict);
    triples = parser.ParseFile(spec.path);
  } else {
    NTriplesParser parser(&dict, spec.lenient_parse);
    triples = parser.ParseFile(spec.path);
    skipped_lines = parser.skipped_lines();
  }
  if (!triples.ok()) return WithMessagePrefix(triples.status(), spec.path);
  return LoadedKb{
      KnowledgeBase::Build(std::move(dict), std::move(*triples), spec.kb),
      skipped_lines};
}

// --- KbEpoch -----------------------------------------------------------------

KbEpoch::KbEpoch(KnowledgeBase kb_in, uint64_t generation_in,
                 const RemiOptions& mining,
                 std::shared_ptr<std::atomic<size_t>> live_epochs_in)
    : kb(std::move(kb_in)),
      generation(generation_in),
      eval_cache(std::make_shared<EvalCache>(mining.eval_cache_capacity,
                                             mining.eval_cache_shards)),
      live_epochs(std::move(live_epochs_in)) {
  live_epochs->fetch_add(1, std::memory_order_relaxed);
}

KbEpoch::~KbEpoch() {
  live_epochs->fetch_sub(1, std::memory_order_relaxed);
}

// --- catalog parsing ---------------------------------------------------------

Result<std::vector<KbCatalogEntry>> ParseKbCatalog(std::string_view json) {
  REMI_ASSIGN_OR_RETURN(const JsonValue doc, ParseJson(json));
  if (!doc.is_object()) {
    return Status::InvalidArgument("catalog must be a JSON object");
  }
  const JsonValue* kbs = doc.Find("kbs");
  if (kbs == nullptr || !kbs->is_array()) {
    return Status::InvalidArgument(
        "catalog needs a \"kbs\" array of {name, path, ...} entries");
  }
  std::vector<KbCatalogEntry> entries;
  std::set<std::string> seen;
  for (const JsonValue& item : kbs->items()) {
    if (!item.is_object()) {
      return Status::InvalidArgument("catalog entries must be objects");
    }
    KbCatalogEntry entry;
    const JsonValue* name = item.Find("name");
    if (name == nullptr || !name->is_string() || name->AsString().empty()) {
      return Status::InvalidArgument(
          "catalog entry needs a non-empty \"name\" string");
    }
    entry.name = name->AsString();
    if (!seen.insert(entry.name).second) {
      return Status::InvalidArgument("catalog lists kb '" + entry.name +
                                     "' twice");
    }
    const JsonValue* path = item.Find("path");
    if (path == nullptr || !path->is_string() || path->AsString().empty()) {
      return Status::InvalidArgument("catalog entry '" + entry.name +
                                     "' needs a \"path\" string");
    }
    entry.spec.path = path->AsString();
    if (const JsonValue* lenient = item.Find("lenient")) {
      if (!lenient->is_bool()) {
        return Status::InvalidArgument("catalog entry '" + entry.name +
                                       "': lenient must be a bool");
      }
      entry.spec.lenient_parse = lenient->AsBool();
    }
    TenantQuota quota;
    bool has_quota = false;
    for (const char* key : {"max_in_flight", "max_queued"}) {
      const JsonValue* v = item.Find(key);
      if (v == nullptr) continue;
      if (!v->is_number() || !std::isfinite(v->AsNumber()) ||
          v->AsNumber() < 0 || v->AsNumber() != std::floor(v->AsNumber())) {
        return Status::InvalidArgument("catalog entry '" + entry.name +
                                       "': " + key +
                                       " must be a non-negative integer");
      }
      const size_t n = static_cast<size_t>(v->AsNumber());
      (std::string_view(key) == "max_in_flight" ? quota.max_in_flight
                                                : quota.max_queued) = n;
      has_quota = true;
    }
    if (has_quota) entry.quota = quota;
    entries.push_back(std::move(entry));
  }
  return entries;
}

// --- Tenant ------------------------------------------------------------------

Tenant::Tenant(std::string name, const RemiOptions& mining, TenantQuota quota,
               std::shared_ptr<std::atomic<size_t>> live_epochs)
    : name_(std::move(name)),
      mining_(mining),
      quota_(quota),
      live_epochs_(std::move(live_epochs)) {}

void Tenant::PublishInitial(KnowledgeBase kb, size_t parse_skipped_lines) {
  auto epoch = std::make_shared<KbEpoch>(std::move(kb), /*generation=*/1,
                                         mining_, live_epochs_);
  epoch->parse_skipped_lines = parse_skipped_lines;
  std::lock_guard<std::mutex> lock(epoch_mu_);
  epoch_ = std::move(epoch);
}

std::shared_ptr<KbEpoch> Tenant::CurrentEpoch() const {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  return epoch_;
}

ReloadKbResponse Tenant::Reload(const KbSpec& spec) {
  ReloadKbResponse response;
  Timer timer;
  // Serializing one tenant's reloads makes its generation numbering
  // race-free and keeps at most one candidate load in memory per tenant.
  // Request traffic is never blocked by this lock: the serving path only
  // takes epoch_mu_, which is held below just for the pointer swap —
  // and other tenants' reloads do not contend at all.
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  auto loaded = LoadKbFromSpec(spec);
  response.load_seconds = timer.ElapsedSeconds();
  if (!loaded.ok()) {
    // Fail closed: the candidate never touched the registry. Report the
    // load error in-band and describe the generation that keeps serving.
    reloads_rejected_.fetch_add(1, std::memory_order_relaxed);
    response.status = loaded.status();
    std::shared_ptr<KbEpoch> serving = CurrentEpoch();
    response.generation = serving->generation;
    response.facts = serving->kb.NumFacts();
    response.entities = serving->kb.NumEntities();
    response.parse_skipped_lines = serving->parse_skipped_lines;
    return response;
  }
  std::shared_ptr<KbEpoch> next;
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    next = std::make_shared<KbEpoch>(std::move(loaded->kb),
                                     epoch_->generation + 1, mining_,
                                     live_epochs_);
    next->parse_skipped_lines = loaded->parse_skipped_lines;
    // Publish. The displaced epoch lives on until its last pinned request
    // releases it (shared_ptr count is the drain counter) and takes its
    // EvalCache and miners with it — stale entries die with their epoch.
    epoch_ = next;
  }
  reloads_ok_.fetch_add(1, std::memory_order_relaxed);
  response.status = Status::OK();
  response.generation = next->generation;
  response.facts = next->kb.NumFacts();
  response.entities = next->kb.NumEntities();
  response.parse_skipped_lines = next->parse_skipped_lines;
  return response;
}

RemiMiner* Tenant::MinerFor(const KbEpoch& epoch,
                            const std::optional<CostModelOptions>& cost,
                            const std::optional<EnumeratorOptions>& enumerator,
                            ThreadPool* pool) const {
  RemiOptions variant = mining_;
  if (cost.has_value()) variant.cost = *cost;
  if (enumerator.has_value()) variant.enumerator = *enumerator;
  const std::string key = VariantKey(variant.cost, variant.enumerator);

  {
    std::lock_guard<std::mutex> lock(epoch.miners_mu);
    auto it = epoch.miners.find(key);
    if (it != epoch.miners.end()) return it->second.get();
  }
  // Build outside the lock: a first Ĉpr request runs a full PageRank
  // pass, which must not stall concurrent requests for other (or
  // already-built) variants. Two racing builders of the same variant
  // just discard one result. The miner points into this epoch's KB and
  // cache only — the caller's epoch pin keeps both alive.
  auto built = std::make_unique<RemiMiner>(&epoch.kb, variant, pool,
                                           epoch.eval_cache);
  std::lock_guard<std::mutex> lock(epoch.miners_mu);
  auto [it, inserted] = epoch.miners.emplace(key, std::move(built));
  return it->second.get();
}

void Tenant::RecordOutcome(const Status& status) {
  if (status.ok()) {
    completed_ok_.fetch_add(1, std::memory_order_relaxed);
  } else if (status.IsDeadlineExceeded()) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  } else if (status.IsCancelled()) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Tenant::RecordMiningStats(uint64_t nodes_visited, uint64_t mine_micros) {
  nodes_visited_total_.fetch_add(nodes_visited, std::memory_order_relaxed);
  mine_micros_total_.fetch_add(mine_micros, std::memory_order_relaxed);
}

double Tenant::MeanServiceMs() const {
  const uint64_t completed =
      completed_ok_.load(std::memory_order_relaxed) +
      deadline_exceeded_.load(std::memory_order_relaxed) +
      cancelled_.load(std::memory_order_relaxed);
  if (completed == 0) return 0.0;
  return static_cast<double>(
             mine_micros_total_.load(std::memory_order_relaxed)) /
         (1000.0 * static_cast<double>(completed));
}

TenantCounters Tenant::counters() const {
  TenantCounters c;
  c.admitted = admitted_.load(std::memory_order_relaxed);
  c.completed_ok = completed_ok_.load(std::memory_order_relaxed);
  c.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  c.cancelled = cancelled_.load(std::memory_order_relaxed);
  c.rejected = rejected_.load(std::memory_order_relaxed);
  c.failed = failed_.load(std::memory_order_relaxed);
  c.shed_expired_in_queue =
      shed_expired_in_queue_.load(std::memory_order_relaxed);
  c.reloads_ok = reloads_ok_.load(std::memory_order_relaxed);
  c.reloads_rejected = reloads_rejected_.load(std::memory_order_relaxed);
  c.generation = generation();
  c.nodes_visited_total = nodes_visited_total_.load(std::memory_order_relaxed);
  c.mine_micros_total = mine_micros_total_.load(std::memory_order_relaxed);
  return c;
}

// --- TenantRegistry ----------------------------------------------------------

TenantRegistry::TenantRegistry(const RemiOptions& mining,
                               TenantQuota default_quota,
                               std::shared_ptr<std::atomic<size_t>> live_epochs)
    : mining_(mining),
      default_quota_(default_quota),
      live_epochs_(std::move(live_epochs)) {}

void TenantRegistry::InitDefault(KnowledgeBase kb,
                                 size_t parse_skipped_lines) {
  auto tenant = std::make_shared<Tenant>(std::string(), mining_,
                                         default_quota_, live_epochs_);
  tenant->PublishInitial(std::move(kb), parse_skipped_lines);
  std::lock_guard<std::mutex> lock(mu_);
  tenants_.emplace(std::string(), std::move(tenant));
}

std::shared_ptr<Tenant> TenantRegistry::DefaultTenant() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.at(std::string());
}

Result<std::shared_ptr<Tenant>> TenantRegistry::Resolve(
    const std::string& name) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = tenants_.find(name);
    if (it != tenants_.end()) return it->second;
    if (loading_.count(name) > 0) {
      // Single-flight: another thread is opening this name (lazy catalog
      // open or an Attach in progress); wait for its verdict rather than
      // loading the same KB twice.
      loading_cv_.wait(lock);
      continue;
    }
    auto cat = catalog_.find(name);
    if (cat == catalog_.end()) {
      return Status::NotFound("unknown kb '" + name + "'");
    }
    const CatalogEntry entry = cat->second;
    loading_.insert(name);
    lock.unlock();
    // The load (parse/mmap/validate) runs off-lock: other tenants keep
    // resolving and serving while this one opens.
    auto loaded = LoadKbFromSpec(entry.spec);
    lock.lock();
    loading_.erase(name);
    loading_cv_.notify_all();
    if (!loaded.ok()) {
      // Fail open for retries: the entry stays in the catalog, so a
      // transient IO error doesn't permanently kill the name.
      return WithMessagePrefix(loaded.status(), "kb '" + name + "'");
    }
    auto tenant = std::make_shared<Tenant>(name, mining_, entry.quota,
                                           live_epochs_);
    tenant->PublishInitial(std::move(loaded->kb),
                           loaded->parse_skipped_lines);
    tenants_.emplace(name, tenant);
    return tenant;
  }
}

std::shared_ptr<Tenant> TenantRegistry::Peek(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(name);
  return it != tenants_.end() ? it->second : nullptr;
}

bool TenantRegistry::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.count(name) > 0 || loading_.count(name) > 0 ||
         catalog_.count(name) > 0;
}

Status TenantRegistry::Attach(const std::string& name, const KbSpec& spec,
                              const std::optional<TenantQuota>& quota) {
  if (name.empty()) {
    return Status::InvalidArgument(
        "the default kb \"\" always exists and cannot be attached");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tenants_.count(name) > 0 || loading_.count(name) > 0 ||
        catalog_.count(name) > 0) {
      return Status::AlreadyExists("kb '" + name + "' already exists");
    }
    // Reserve the name across the off-lock load: concurrent attaches of
    // the same name fail fast, concurrent resolves wait.
    loading_.insert(name);
  }
  auto loaded = LoadKbFromSpec(spec);
  std::lock_guard<std::mutex> lock(mu_);
  loading_.erase(name);
  loading_cv_.notify_all();
  if (!loaded.ok()) {
    return WithMessagePrefix(loaded.status(), "kb '" + name + "'");
  }
  auto tenant = std::make_shared<Tenant>(
      name, mining_, quota.value_or(default_quota_), live_epochs_);
  tenant->PublishInitial(std::move(loaded->kb), loaded->parse_skipped_lines);
  tenants_.emplace(name, std::move(tenant));
  return Status::OK();
}

Status TenantRegistry::AttachKb(const std::string& name, KnowledgeBase kb,
                                const std::optional<TenantQuota>& quota) {
  if (name.empty()) {
    return Status::InvalidArgument(
        "the default kb \"\" always exists and cannot be attached");
  }
  auto tenant = std::make_shared<Tenant>(
      name, mining_, quota.value_or(default_quota_), live_epochs_);
  tenant->PublishInitial(std::move(kb), 0);
  std::lock_guard<std::mutex> lock(mu_);
  if (tenants_.count(name) > 0 || loading_.count(name) > 0 ||
      catalog_.count(name) > 0) {
    return Status::AlreadyExists("kb '" + name + "' already exists");
  }
  tenants_.emplace(name, std::move(tenant));
  return Status::OK();
}

Status TenantRegistry::Detach(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("the default kb cannot be detached");
  }
  std::unique_lock<std::mutex> lock(mu_);
  // An in-flight single-flight load still owns the name; let it finish
  // so detach has a definite object (or a definite failure) to act on.
  while (loading_.count(name) > 0) loading_cv_.wait(lock);
  const bool was_open = tenants_.erase(name) > 0;
  const bool was_cataloged = catalog_.erase(name) > 0;
  if (!was_open && !was_cataloged) {
    return Status::NotFound("unknown kb '" + name + "'");
  }
  // The erased shared_ptr was possibly the last owner — but any request
  // still executing holds its own shared_ptr<Tenant> plus an epoch pin,
  // so the tenant and its epochs drain instead of being torn down.
  return Status::OK();
}

Status TenantRegistry::AddCatalogEntry(
    const std::string& name, const KbSpec& spec,
    const std::optional<TenantQuota>& quota) {
  if (name.empty()) {
    return Status::InvalidArgument("catalog entries need a non-empty name");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (tenants_.count(name) > 0 || loading_.count(name) > 0 ||
      catalog_.count(name) > 0) {
    return Status::AlreadyExists("kb '" + name + "' already exists");
  }
  catalog_.emplace(name, CatalogEntry{spec, quota.value_or(default_quota_)});
  return Status::OK();
}

std::vector<KbInfo> TenantRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<KbInfo> out;
  out.reserve(tenants_.size() + catalog_.size());
  for (const auto& [name, tenant] : tenants_) {
    KbInfo info;
    info.name = name;
    info.open = true;
    info.quota = tenant->quota();
    const std::shared_ptr<KbEpoch> epoch = tenant->CurrentEpoch();
    info.generation = epoch->generation;
    info.facts = epoch->kb.NumFacts();
    info.entities = epoch->kb.NumEntities();
    out.push_back(std::move(info));
  }
  for (const auto& [name, entry] : catalog_) {
    KbInfo info;
    info.name = name;
    info.from_catalog = true;
    info.quota = entry.quota;
    out.push_back(std::move(info));
  }
  // std::map iteration is already name-sorted, but the two sources
  // interleave; one stable sort keeps "" first and names ordered.
  std::sort(out.begin(), out.end(),
            [](const KbInfo& a, const KbInfo& b) { return a.name < b.name; });
  return out;
}

std::vector<std::shared_ptr<Tenant>> TenantRegistry::OpenTenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<Tenant>> out;
  out.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) out.push_back(tenant);
  return out;
}

size_t TenantRegistry::tenants_active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.size();
}

}  // namespace remi
