#include "summ/linksum_lite.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace remi {

Summary LinkSumSummarize(const KnowledgeBase& kb,
                         const std::unordered_map<TermId, double>& pagerank,
                         TermId entity, size_t k,
                         const LinkSumConfig& config) {
  const Summary candidates = CandidateFacts(kb, entity);
  if (candidates.empty() || k == 0) return {};

  // Stage 1: resource selection. Group candidate facts by object and
  // score each object by PageRank + Backlink.
  struct Resource {
    TermId object;
    double score;
    std::vector<TermId> predicates;
  };
  std::vector<Resource> resources;
  double max_pr = 0.0;
  for (const auto& [id, score] : pagerank) {
    (void)id;
    max_pr = std::max(max_pr, score);
  }
  if (max_pr <= 0) max_pr = 1.0;
  for (const SummaryItem& item : candidates) {
    auto it = std::find_if(resources.begin(), resources.end(),
                           [&](const Resource& r) {
                             return r.object == item.object;
                           });
    if (it == resources.end()) {
      Resource r;
      r.object = item.object;
      const auto pr = pagerank.find(item.object);
      const double pr_norm =
          pr == pagerank.end() ? 0.0 : pr->second / max_pr;
      // Backlink: does the object link back to the entity?
      bool backlink = false;
      for (const Triple& t : kb.store().BySubject(item.object)) {
        if (t.o == entity && !kb.IsInversePredicate(t.p)) {
          backlink = true;
          break;
        }
      }
      r.score = config.pagerank_weight * pr_norm +
                (1.0 - config.pagerank_weight) * (backlink ? 1.0 : 0.0);
      resources.push_back(std::move(r));
      it = resources.end() - 1;
    }
    it->predicates.push_back(item.predicate);
  }
  std::sort(resources.begin(), resources.end(),
            [](const Resource& a, const Resource& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.object < b.object;
            });

  // Stage 2: predicate selection. For each chosen resource pick the most
  // frequent connecting predicate (LinkSUM's "FRQ" strategy).
  Summary out;
  for (const Resource& r : resources) {
    if (out.size() >= k) break;
    TermId best_pred = kNullTerm;
    size_t best_freq = 0;
    for (const TermId p : r.predicates) {
      const size_t freq = kb.store().CountPredicate(p);
      if (best_pred == kNullTerm || freq > best_freq ||
          (freq == best_freq && p < best_pred)) {
        best_pred = p;
        best_freq = freq;
      }
    }
    out.push_back(SummaryItem{best_pred, r.object});
  }
  return out;
}

}  // namespace remi
