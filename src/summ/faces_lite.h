// FACES-lite: diversity-aware entity summarization (Gunaratna et al.,
// AAAI'15), reimplemented at its algorithmic core for the Table 3
// comparison.
//
// FACES partitions an entity's facts into conceptually similar groups
// (via Cobweb hierarchical clustering over wordnet-expanded feature sets)
// and ranks facts within each group by a tf-idf-style popularity, then
// fills the summary round-robin across groups — diversity first. The lite
// version keeps that structure with an offline-friendly grouping: facts
// cluster by the class of their object (literal facts cluster by
// predicate), and in-cluster ranking is popularity × informativeness
// (log-inverse fact frequency).

#pragma once

#include "kb/knowledge_base.h"
#include "summ/quality.h"

namespace remi {

/// Summarizes `entity` with at most `k` facts.
Summary FacesSummarize(const KnowledgeBase& kb, TermId entity, size_t k);

}  // namespace remi
