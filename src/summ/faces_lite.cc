#include "summ/faces_lite.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

namespace remi {

Summary FacesSummarize(const KnowledgeBase& kb, TermId entity, size_t k) {
  const Summary candidates = CandidateFacts(kb, entity);
  if (candidates.empty() || k == 0) return {};

  // Group facts by the conceptual type of their object.
  // Entity objects group by their first class; literals by predicate.
  std::map<TermId, std::vector<SummaryItem>> clusters;
  for (const SummaryItem& item : candidates) {
    TermId cluster_key;
    if (kb.dict().IsLiteral(item.object)) {
      cluster_key = item.predicate;
    } else {
      const auto classes = kb.ClassesOf(item.object);
      cluster_key = classes.empty() ? item.predicate : classes.front();
    }
    clusters[cluster_key].push_back(item);
  }

  // Rank each cluster by popularity x informativeness.
  const double total_facts =
      static_cast<double>(kb.NumFacts() == 0 ? 1 : kb.NumFacts());
  const auto fact_score = [&](const SummaryItem& item) {
    const double popularity =
        std::log2(1.0 + static_cast<double>(kb.EntityFrequency(item.object)));
    const double fact_freq = static_cast<double>(
        kb.store().CountPredicateObject(item.predicate, item.object));
    const double informativeness =
        std::log2(total_facts / std::max(1.0, fact_freq));
    return popularity * informativeness;
  };
  std::vector<std::vector<SummaryItem>> ranked_clusters;
  for (auto& [key, members] : clusters) {
    (void)key;
    std::sort(members.begin(), members.end(),
              [&](const SummaryItem& a, const SummaryItem& b) {
                const double sa = fact_score(a);
                const double sb = fact_score(b);
                if (sa != sb) return sa > sb;
                return a < b;
              });
    ranked_clusters.push_back(std::move(members));
  }
  // Most promising cluster first (by its best member's score).
  std::sort(ranked_clusters.begin(), ranked_clusters.end(),
            [&](const auto& a, const auto& b) {
              return fact_score(a.front()) > fact_score(b.front());
            });

  // Round-robin fill: one fact per cluster per round (FACES' diversity).
  Summary out;
  for (size_t round = 0; out.size() < k; ++round) {
    bool any = false;
    for (const auto& cluster : ranked_clusters) {
      if (round < cluster.size()) {
        out.push_back(cluster[round]);
        any = true;
        if (out.size() >= k) break;
      }
    }
    if (!any) break;
  }
  return out;
}

}  // namespace remi
