#include "summ/gold_standard.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace remi {

namespace {

/// Deterministic per-(expert, entity, fact) noise seed.
uint64_t MixSeed(uint64_t seed, uint64_t a, uint64_t b, uint64_t c) {
  uint64_t h = seed ^ 0x9e3779b97f4a7c15ULL;
  for (uint64_t v : {a, b, c}) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace

ExpertSummaries BuildGoldStandard(const KnowledgeBase& kb, TermId entity,
                                  const GoldStandardConfig& config) {
  const Summary candidates = CandidateFacts(kb, entity);
  ExpertSummaries out;
  if (candidates.empty()) {
    out.top5.resize(config.num_experts);
    out.top10.resize(config.num_experts);
    return out;
  }

  // Shared (noise-free) part of each fact's appeal.
  const double num_entities =
      static_cast<double>(kb.NumEntities() == 0 ? 1 : kb.NumEntities());
  std::vector<double> base_scores(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    const SummaryItem& item = candidates[i];
    // Prominence: log-scaled frequency of the object.
    const double prom =
        std::log2(1.0 + static_cast<double>(kb.EntityFrequency(item.object)));
    const double prom_norm =
        prom / std::log2(num_entities + 2.0);  // roughly [0, 1]
    // Uniqueness: how few other entities share this exact fact.
    const double sharers = static_cast<double>(
        kb.store().CountPredicateObject(item.predicate, item.object));
    const double uniq = 1.0 / std::max(1.0, sharers);
    base_scores[i] = config.prominence_weight * prom_norm +
                     config.uniqueness_weight * uniq;
  }

  for (size_t expert = 0; expert < config.num_experts; ++expert) {
    // Expert's personal noisy view of the candidates.
    std::vector<double> scores(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      Rng noise(MixSeed(config.seed, expert, entity,
                        (static_cast<uint64_t>(candidates[i].predicate)
                         << 32) |
                            candidates[i].object));
      scores[i] = base_scores[i] + config.noise_sigma * noise.NextGaussian();
    }

    // Greedy diversity-aware selection of up to 10 facts.
    Summary picked;
    std::vector<bool> used(candidates.size(), false);
    std::unordered_map<TermId, int> predicate_uses;
    while (picked.size() < 10 && picked.size() < candidates.size()) {
      int best = -1;
      double best_score = 0.0;
      for (size_t i = 0; i < candidates.size(); ++i) {
        if (used[i]) continue;
        const int uses = predicate_uses[candidates[i].predicate];
        const double discounted =
            scores[i] * std::pow(config.diversity_discount, uses);
        if (best < 0 || discounted > best_score) {
          best = static_cast<int>(i);
          best_score = discounted;
        }
      }
      if (best < 0) break;
      used[static_cast<size_t>(best)] = true;
      ++predicate_uses[candidates[static_cast<size_t>(best)].predicate];
      picked.push_back(candidates[static_cast<size_t>(best)]);
    }

    Summary top5(picked.begin(),
                 picked.begin() + std::min<size_t>(5, picked.size()));
    out.top5.push_back(std::move(top5));
    out.top10.push_back(std::move(picked));
  }
  return out;
}

}  // namespace remi
