// Entity-summarization types and quality metrics (paper §4.1.4, Table 3).
//
// A summary is a list of predicate-object pairs describing one entity in
// the standard language bias, excluding rdf:type and inverse predicates
// (the paper's Table 3 protocol). Quality follows FACES [8]: the average
// overlap between a reported summary and each expert's reference summary,
// computed on predicate-object pairs (PO) or objects only (O). §4.1.4 also
// reports precision against the union of all expert summaries (P / O / PO).

#pragma once

#include <vector>

#include "kb/knowledge_base.h"

namespace remi {

/// One summary entry: a fact's predicate and object.
struct SummaryItem {
  TermId predicate = kNullTerm;
  TermId object = kNullTerm;

  bool operator==(const SummaryItem& other) const {
    return predicate == other.predicate && object == other.object;
  }
  bool operator<(const SummaryItem& other) const {
    if (predicate != other.predicate) return predicate < other.predicate;
    return object < other.object;
  }
};

using Summary = std::vector<SummaryItem>;

/// The candidate facts of `entity` for summarization: its outgoing facts
/// minus rdf:type, rdfs:label, and materialized inverse predicates.
Summary CandidateFacts(const KnowledgeBase& kb, TermId entity);

/// Average |summary ∩ reference_i| over references (PO-level overlap);
/// FACES' "quality".
double QualityPo(const Summary& summary,
                 const std::vector<Summary>& references);

/// Average object-level overlap.
double QualityO(const Summary& summary,
                const std::vector<Summary>& references);

/// Precision of the summary against the union of all references.
struct MergedPrecision {
  double predicates = 0.0;  ///< fraction of summary predicates in the union
  double objects = 0.0;     ///< fraction of summary objects in the union
  double pairs = 0.0;       ///< fraction of summary PO pairs in the union
};
MergedPrecision PrecisionVsMergedGold(const Summary& summary,
                                      const std::vector<Summary>& references);

}  // namespace remi
