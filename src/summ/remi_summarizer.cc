#include "summ/remi_summarizer.h"

namespace remi {

Summary RemiSummarize(const RemiMiner& miner, TermId entity, size_t k) {
  auto summary = RemiSummarize(miner, entity, k, MineControl{});
  return summary.ok() ? *summary : Summary{};
}

Result<Summary> RemiSummarize(const RemiMiner& miner, TermId entity,
                              size_t k, const MineControl& control) {
  REMI_ASSIGN_OR_RETURN(
      const std::vector<RankedSubgraph> ranked,
      miner.RankedCommonSubgraphs(MatchSet{entity}, control));
  Summary out;
  for (const RankedSubgraph& r : ranked) {
    if (out.size() >= k) break;
    if (r.expression.shape != SubgraphShape::kAtom) continue;
    out.push_back(SummaryItem{r.expression.p0, r.expression.c1});
  }
  return out;
}

RemiOptions MakeTable3RemiOptions(ProminenceMetric metric) {
  RemiOptions options;
  options.cost.metric = metric;
  options.enumerator.extended_language = false;
  options.enumerator.include_type_atoms = false;
  options.enumerator.include_inverse_predicates = false;
  return options;
}

}  // namespace remi
