#include "summ/remi_summarizer.h"

namespace remi {

Summary RemiSummarize(const RemiMiner& miner, TermId entity, size_t k) {
  auto ranked = miner.RankedCommonSubgraphs(MatchSet{entity});
  if (!ranked.ok()) return {};
  Summary out;
  for (const RankedSubgraph& r : *ranked) {
    if (out.size() >= k) break;
    if (r.expression.shape != SubgraphShape::kAtom) continue;
    out.push_back(SummaryItem{r.expression.p0, r.expression.c1});
  }
  return out;
}

RemiOptions MakeTable3RemiOptions(ProminenceMetric metric) {
  RemiOptions options;
  options.cost.metric = metric;
  options.enumerator.extended_language = false;
  options.enumerator.include_type_atoms = false;
  options.enumerator.include_inverse_predicates = false;
  return options;
}

}  // namespace remi
