#include "summ/quality.h"

#include <algorithm>
#include <unordered_set>

namespace remi {

Summary CandidateFacts(const KnowledgeBase& kb, TermId entity) {
  Summary out;
  for (const Triple& t : kb.store().BySubject(entity)) {
    if (t.p == kb.type_predicate() || t.p == kb.label_predicate()) continue;
    if (kb.IsInversePredicate(t.p)) continue;
    out.push_back(SummaryItem{t.p, t.o});
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

double QualityPo(const Summary& summary,
                 const std::vector<Summary>& references) {
  if (references.empty()) return 0.0;
  double total = 0.0;
  for (const Summary& ref : references) {
    size_t overlap = 0;
    for (const SummaryItem& item : summary) {
      if (std::find(ref.begin(), ref.end(), item) != ref.end()) ++overlap;
    }
    total += static_cast<double>(overlap);
  }
  return total / static_cast<double>(references.size());
}

double QualityO(const Summary& summary,
                const std::vector<Summary>& references) {
  if (references.empty()) return 0.0;
  std::unordered_set<TermId> summary_objects;
  for (const SummaryItem& item : summary) summary_objects.insert(item.object);
  double total = 0.0;
  for (const Summary& ref : references) {
    std::unordered_set<TermId> ref_objects;
    for (const SummaryItem& item : ref) ref_objects.insert(item.object);
    size_t overlap = 0;
    for (const TermId o : summary_objects) {
      if (ref_objects.count(o)) ++overlap;
    }
    total += static_cast<double>(overlap);
  }
  return total / static_cast<double>(references.size());
}

MergedPrecision PrecisionVsMergedGold(
    const Summary& summary, const std::vector<Summary>& references) {
  MergedPrecision out;
  if (summary.empty()) return out;
  std::unordered_set<TermId> gold_predicates;
  std::unordered_set<TermId> gold_objects;
  std::unordered_set<uint64_t> gold_pairs;
  for (const Summary& ref : references) {
    for (const SummaryItem& item : ref) {
      gold_predicates.insert(item.predicate);
      gold_objects.insert(item.object);
      gold_pairs.insert((static_cast<uint64_t>(item.predicate) << 32) |
                        item.object);
    }
  }
  size_t p_hits = 0, o_hits = 0, po_hits = 0;
  for (const SummaryItem& item : summary) {
    if (gold_predicates.count(item.predicate)) ++p_hits;
    if (gold_objects.count(item.object)) ++o_hits;
    if (gold_pairs.count((static_cast<uint64_t>(item.predicate) << 32) |
                         item.object)) {
      ++po_hits;
    }
  }
  const double n = static_cast<double>(summary.size());
  out.predicates = static_cast<double>(p_hits) / n;
  out.objects = static_cast<double>(o_hits) / n;
  out.pairs = static_cast<double>(po_hits) / n;
  return out;
}

}  // namespace remi
