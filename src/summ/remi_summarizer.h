// REMI as an entity summarizer (Table 3 protocol): the top-k most
// intuitive single-atom subgraph expressions by Ĉ, with rdf:type and
// inverse predicates excluded so the output is comparable to the gold
// standard's language.

#pragma once

#include "remi/remi.h"
#include "summ/quality.h"

namespace remi {

/// Summarizes `entity` with the `k` least complex atoms according to the
/// miner's cost model. The miner must be configured with the standard
/// language bias and type/inverse exclusion (see MakeTable3RemiOptions).
Summary RemiSummarize(const RemiMiner& miner, TermId entity, size_t k);

/// Interruptible variant for the serving path: `control`'s deadline and
/// cancellation token are polled during the atom-costing pass, and an
/// interrupted call fails with DeadlineExceeded / Cancelled.
Result<Summary> RemiSummarize(const RemiMiner& miner, TermId entity,
                              size_t k, const MineControl& control);

/// The miner configuration of the paper's Table 3 runs: standard language
/// bias, no rdf:type atoms, no inverse predicates.
RemiOptions MakeTable3RemiOptions(ProminenceMetric metric);

}  // namespace remi
