// LinkSUM-lite: link-analysis entity summarization (Thalhammer et al.,
// ICWE'16), reimplemented at its algorithmic core for the Table 3
// comparison.
//
// LinkSUM scores candidate resources connected to the entity by a mix of
// PageRank and Backlink (whether the resource links back to the entity),
// then selects, for each top resource, the best predicate connecting the
// entity to it. The lite version runs the same two stages with PageRank
// computed on the KB's own entity graph.

#pragma once

#include <unordered_map>

#include "kb/knowledge_base.h"
#include "summ/quality.h"

namespace remi {

/// LinkSUM parameters.
struct LinkSumConfig {
  /// Weight of PageRank vs Backlink in resource selection.
  double pagerank_weight = 0.85;
};

/// Summarizes `entity` with at most `k` facts, using precomputed
/// `pagerank` scores (see ComputePageRank).
Summary LinkSumSummarize(const KnowledgeBase& kb,
                         const std::unordered_map<TermId, double>& pagerank,
                         TermId entity, size_t k,
                         const LinkSumConfig& config = {});

}  // namespace remi
