// Simulated expert gold standard for entity summarization (Table 3).
//
// The paper evaluates against the FACES/LinkSUM gold standard: reference
// summaries of 5 and 10 attributes for 80 prominent DBpedia entities,
// manually built by 7 semantic-web experts "with diversity, prominence,
// and uniqueness as selection criteria". That asset is not available, so
// we simulate the experts: each expert scores an entity's candidate facts
// by prominence + uniqueness with personal Gaussian noise and picks
// greedily under a diversity discount for already-used predicates. See
// DESIGN.md §5 for why this preserves Table 3's shape.

#pragma once

#include <cstdint>
#include <vector>

#include "kb/knowledge_base.h"
#include "summ/quality.h"
#include "util/random.h"

namespace remi {

/// Expert-model parameters.
struct GoldStandardConfig {
  size_t num_experts = 7;
  /// Relative weight of object prominence vs fact uniqueness.
  double prominence_weight = 0.6;
  double uniqueness_weight = 0.4;
  /// Per-expert score noise (std dev, in score units).
  double noise_sigma = 0.25;
  /// Score multiplier per prior pick of the same predicate (diversity).
  double diversity_discount = 0.4;
  uint64_t seed = 8080;
};

/// The 7 experts' reference summaries of one entity at sizes 5 and 10.
struct ExpertSummaries {
  std::vector<Summary> top5;
  std::vector<Summary> top10;
};

/// Builds the simulated expert summaries for `entity`.
ExpertSummaries BuildGoldStandard(const KnowledgeBase& kb, TermId entity,
                                  const GoldStandardConfig& config);

}  // namespace remi
