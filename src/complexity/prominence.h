// Prominence providers (paper §3.1): how "well-known" a concept is.
//
// REMI ranks concepts by prominence to assign them code lengths; the paper
// evaluates two metrics, fr (in-KB fact frequency) and pr (page rank),
// yielding the Ĉfr and Ĉpr cost variants. Providers score entities; the
// RankingService falls back to fr wherever a metric is undefined ("We use
// fr whenever pr is undefined").

#pragma once

#include <memory>
#include <unordered_map>

#include "kb/knowledge_base.h"

namespace remi {

/// Which prominence metric backs entity rankings.
enum class ProminenceMetric {
  kFrequency,  ///< fr: number of facts mentioning the concept
  kPageRank,   ///< pr: PageRank on the entity link graph
};

const char* ProminenceMetricToString(ProminenceMetric metric);

/// \brief Scores terms by prominence; larger is more prominent.
class ProminenceProvider {
 public:
  virtual ~ProminenceProvider() = default;

  /// The prominence score of `t`, or 0 when undefined.
  virtual double Score(TermId t) const = 0;

  /// Whether the metric is defined for `t`.
  virtual bool Defined(TermId t) const = 0;

  virtual ProminenceMetric metric() const = 0;
};

/// fr: in-KB fact frequency (defined for every entity; literals score by
/// their occurrence count too).
class FrequencyProminence : public ProminenceProvider {
 public:
  explicit FrequencyProminence(const KnowledgeBase* kb) : kb_(kb) {}

  double Score(TermId t) const override;
  bool Defined(TermId /*t*/) const override { return true; }
  ProminenceMetric metric() const override {
    return ProminenceMetric::kFrequency;
  }

 private:
  const KnowledgeBase* kb_;
};

/// pr: PageRank over the entity link graph; undefined for literals and
/// for terms outside the graph.
class PageRankProminence : public ProminenceProvider {
 public:
  /// Computes PageRank on construction (O(iterations * edges)).
  explicit PageRankProminence(const KnowledgeBase* kb);

  double Score(TermId t) const override;
  bool Defined(TermId t) const override { return scores_.count(t) > 0; }
  ProminenceMetric metric() const override {
    return ProminenceMetric::kPageRank;
  }

 private:
  std::unordered_map<TermId, double> scores_;
};

/// Builds the provider for a metric.
std::unique_ptr<ProminenceProvider> MakeProminenceProvider(
    const KnowledgeBase* kb, ProminenceMetric metric);

}  // namespace remi
