#include "complexity/prominence.h"

#include "complexity/pagerank.h"

namespace remi {

const char* ProminenceMetricToString(ProminenceMetric metric) {
  switch (metric) {
    case ProminenceMetric::kFrequency:
      return "fr";
    case ProminenceMetric::kPageRank:
      return "pr";
  }
  return "?";
}

double FrequencyProminence::Score(TermId t) const {
  return static_cast<double>(kb_->EntityFrequency(t));
}

PageRankProminence::PageRankProminence(const KnowledgeBase* kb)
    : scores_(ComputePageRank(*kb)) {}

double PageRankProminence::Score(TermId t) const {
  auto it = scores_.find(t);
  return it == scores_.end() ? 0.0 : it->second;
}

std::unique_ptr<ProminenceProvider> MakeProminenceProvider(
    const KnowledgeBase* kb, ProminenceMetric metric) {
  switch (metric) {
    case ProminenceMetric::kFrequency:
      return std::make_unique<FrequencyProminence>(kb);
    case ProminenceMetric::kPageRank:
      return std::make_unique<PageRankProminence>(kb);
  }
  return nullptr;
}

}  // namespace remi
