// Prominence rankings used by the Ĉ cost model (paper §3.1, §3.5.3).
//
// Ĉ encodes a concept by the log2 of its 1-based rank in a context-specific
// prominence ranking:
//   * predicates: one global ranking by fact count (pr is undefined for
//     predicates, so fr is always used);
//   * entity I given predicate p: rank of I among the objects of p
//     (the "chain rule" context);
//   * predicate q given p with a first-to-second-argument join: rank of q
//     among predicates q such that p(x,y) ∧ q(y,z) has matches;
//   * predicate q given p with a subject join (closed shapes): rank among
//     predicates sharing subjects with p;
//   * entity I given a path p0 ∧ p1: rank of I among the bindings of z in
//     p0(x,y) ∧ p1(y,z).
//
// Rankings are computed lazily per context and cached; each conditional
// entity ranking also carries its Eq. 1 power-law fit (alpha, beta, R²) so
// the cost model can run in "fitted" mode, reproducing the paper's
// compressed-ranking implementation (§3.5.3).

#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "complexity/prominence.h"
#include "kb/knowledge_base.h"
#include "util/lru_cache.h"
#include "util/powerlaw.h"

namespace remi {

/// \brief One materialized prominence ranking over terms.
struct ConditionalRanking {
  /// 1-based rank per ranked term.
  std::unordered_map<TermId, size_t> rank;
  /// Ranking scores in rank order (index i = rank i+1); conditional
  /// frequency in fr mode, prominence score in pr mode.
  std::vector<double> sorted_scores;
  /// Smallest positive score (used to scale scores for the log-log fit).
  double min_score = 1.0;
  /// Eq. 1 fit of log2(rank) against log2(score / min_score).
  PowerLawCoefficients fit;

  size_t size() const { return sorted_scores.size(); }

  /// 1-based rank of `t`, or 0 when unranked.
  size_t RankOf(TermId t) const {
    auto it = rank.find(t);
    return it == rank.end() ? 0 : it->second;
  }

  /// Eq. 1 estimate of the code length for a term with ranking score
  /// `score` in this context.
  double FittedBits(double score) const {
    return fit.EstimateBits(score / min_score);
  }
};

/// \brief Lazily computed, cached rankings over a KB.
///
/// Thread-safe: lazy construction is mutex-guarded and rankings are shared
/// immutable snapshots.
class RankingService {
 public:
  /// \param kb the KB (not owned)
  /// \param prominence entity prominence metric (not owned); predicates
  ///        always rank by frequency.
  RankingService(const KnowledgeBase* kb,
                 const ProminenceProvider* prominence);

  /// 1-based global rank of predicate `p` by fact count; 0 if unknown.
  size_t PredicateRank(TermId p) const;

  size_t NumPredicates() const { return predicate_ranking_.size(); }

  /// Ranking of the objects of `p` (context of an atom's constant).
  std::shared_ptr<const ConditionalRanking> ObjectsOfPredicate(
      TermId p) const;

  /// Ranking of the subjects of `p` (context of a subject constant, used
  /// by the AMIE baseline whose atoms may bind either argument).
  std::shared_ptr<const ConditionalRanking> SubjectsOfPredicate(
      TermId p) const;

  /// Ranking of predicates q joinable as p(x,y) ∧ q(y,z).
  std::shared_ptr<const ConditionalRanking> ObjectJoinPredicates(
      TermId p) const;

  /// Ranking of predicates q sharing subjects with p (closed shapes).
  std::shared_ptr<const ConditionalRanking> SubjectJoinPredicates(
      TermId p) const;

  /// Ranking of the bindings of z in p0(x,y) ∧ p1(y,z).
  std::shared_ptr<const ConditionalRanking> PathObjects(TermId p0,
                                                        TermId p1) const;

  const ProminenceProvider& prominence() const { return *prominence_; }
  const KnowledgeBase& kb() const { return *kb_; }

  /// Number of conditional rankings materialized so far (for the storage
  /// accounting of bench/fit_r2).
  size_t NumMaterializedRankings() const;

 private:
  /// Turns (term, conditional frequency) pairs into a ranking ordered by
  /// the active prominence metric.
  std::shared_ptr<const ConditionalRanking> BuildEntityRanking(
      std::unordered_map<TermId, uint64_t> cond_freq) const;

  /// Turns (predicate, conditional count) pairs into a frequency ranking.
  std::shared_ptr<const ConditionalRanking> BuildPredicateRanking(
      std::unordered_map<TermId, uint64_t> counts) const;

  const KnowledgeBase* kb_;
  const ProminenceProvider* prominence_;

  // Global predicate ranking, built eagerly.
  std::unordered_map<TermId, size_t> predicate_ranking_;

  mutable std::mutex mu_;
  mutable std::unordered_map<TermId, std::shared_ptr<const ConditionalRanking>>
      objects_of_predicate_;
  mutable std::unordered_map<TermId, std::shared_ptr<const ConditionalRanking>>
      subjects_of_predicate_;
  mutable std::unordered_map<TermId, std::shared_ptr<const ConditionalRanking>>
      object_join_predicates_;
  mutable std::unordered_map<TermId, std::shared_ptr<const ConditionalRanking>>
      subject_join_predicates_;
  mutable LruCache<uint64_t, std::shared_ptr<const ConditionalRanking>>
      path_objects_;
};

}  // namespace remi
