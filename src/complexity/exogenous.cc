#include "complexity/exogenous.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace remi {

Result<ExogenousProminence> ExogenousProminence::FromTsv(
    const KnowledgeBase& kb, std::string_view tsv) {
  ExogenousProminence provider;
  size_t line_number = 0;
  size_t start = 0;
  while (start <= tsv.size()) {
    size_t end = tsv.find('\n', start);
    if (end == std::string_view::npos) end = tsv.size();
    std::string_view line = TrimWhitespace(tsv.substr(start, end - start));
    ++line_number;
    if (!line.empty() && line[0] != '#') {
      const size_t tab = line.find('\t');
      if (tab == std::string_view::npos) {
        return Status::ParseError("exogenous TSV line " +
                                  std::to_string(line_number) +
                                  ": missing tab separator");
      }
      const std::string iri(TrimWhitespace(line.substr(0, tab)));
      const std::string score_text(TrimWhitespace(line.substr(tab + 1)));
      char* parse_end = nullptr;
      const double score = std::strtod(score_text.c_str(), &parse_end);
      if (parse_end == score_text.c_str() || *parse_end != '\0' ||
          score < 0) {
        return Status::ParseError("exogenous TSV line " +
                                  std::to_string(line_number) +
                                  ": bad score '" + score_text + "'");
      }
      auto id = kb.dict().Lookup(TermKind::kIri, iri);
      if (id.ok()) provider.scores_[*id] = score;
    }
    if (end == tsv.size()) break;
    start = end + 1;
  }
  return provider;
}

Result<ExogenousProminence> ExogenousProminence::FromTsvFile(
    const KnowledgeBase& kb, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IoError("read failure on " + path);
  return FromTsv(kb, buf.str());
}

double ExogenousProminence::Score(TermId t) const {
  auto it = scores_.find(t);
  return it == scores_.end() ? 0.0 : it->second;
}

}  // namespace remi
