#include "complexity/cost_model.h"

#include <cmath>

namespace remi {

namespace {

double Log2Rank(size_t rank) {
  if (rank == 0) return CostModel::kInfiniteCost;
  return std::log2(static_cast<double>(rank));
}

}  // namespace

CostModel::CostModel(const KnowledgeBase* kb, const CostModelOptions& options)
    : CostModel(kb, options, MakeProminenceProvider(kb, options.metric)) {}

CostModel::CostModel(const KnowledgeBase* kb, const CostModelOptions& options,
                     std::unique_ptr<ProminenceProvider> provider)
    : kb_(kb),
      options_(options),
      prominence_(std::move(provider)),
      rankings_(std::make_unique<RankingService>(kb, prominence_.get())) {}

double CostModel::PredicateBits(TermId p) const {
  return Log2Rank(rankings_->PredicateRank(p));
}

double CostModel::EntityBitsFromRanking(const ConditionalRanking& ranking,
                                        TermId term) const {
  const size_t rank = ranking.RankOf(term);
  if (rank == 0) return kInfiniteCost;
  if (options_.use_fitted_entity_ranks) {
    return ranking.FittedBits(ranking.sorted_scores[rank - 1]);
  }
  return Log2Rank(rank);
}

double CostModel::ObjectBits(TermId obj, TermId p) const {
  return EntityBitsFromRanking(*rankings_->ObjectsOfPredicate(p), obj);
}

double CostModel::SubjectBits(TermId subj, TermId p) const {
  return EntityBitsFromRanking(*rankings_->SubjectsOfPredicate(p), subj);
}

double CostModel::ObjectJoinPredicateBits(TermId q, TermId p) const {
  if (!options_.use_join_predicate_ranks) return PredicateBits(q);
  return Log2Rank(rankings_->ObjectJoinPredicates(p)->RankOf(q));
}

double CostModel::SubjectJoinPredicateBits(TermId q, TermId p) const {
  if (!options_.use_join_predicate_ranks) return PredicateBits(q);
  return Log2Rank(rankings_->SubjectJoinPredicates(p)->RankOf(q));
}

double CostModel::PathObjectBits(TermId obj, TermId p0, TermId p1) const {
  return EntityBitsFromRanking(*rankings_->PathObjects(p0, p1), obj);
}

double CostModel::SubgraphCost(const SubgraphExpression& rho) const {
  {
    std::lock_guard<std::mutex> lock(cost_mu_);
    auto it = cost_cache_.find(rho);
    if (it != cost_cache_.end()) return it->second;
  }
  double cost = 0.0;
  switch (rho.shape) {
    case SubgraphShape::kAtom:
      cost = PredicateBits(rho.p0) + ObjectBits(rho.c1, rho.p0);
      break;
    case SubgraphShape::kPath:
      cost = PredicateBits(rho.p0) + ObjectJoinPredicateBits(rho.p1, rho.p0) +
             PathObjectBits(rho.c1, rho.p0, rho.p1);
      break;
    case SubgraphShape::kPathStar:
      cost = PredicateBits(rho.p0) + ObjectJoinPredicateBits(rho.p1, rho.p0) +
             PathObjectBits(rho.c1, rho.p0, rho.p1) +
             ObjectJoinPredicateBits(rho.p2, rho.p0) +
             PathObjectBits(rho.c2, rho.p0, rho.p2);
      break;
    case SubgraphShape::kTwinPair:
      cost = PredicateBits(rho.p0) +
             SubjectJoinPredicateBits(rho.p1, rho.p0);
      break;
    case SubgraphShape::kTwinTriple:
      cost = PredicateBits(rho.p0) +
             SubjectJoinPredicateBits(rho.p1, rho.p0) +
             SubjectJoinPredicateBits(rho.p2, rho.p0);
      break;
  }
  std::lock_guard<std::mutex> lock(cost_mu_);
  cost_cache_.emplace(rho, cost);
  return cost;
}

double CostModel::Cost(const Expression& e) const {
  if (e.IsTop()) return kInfiniteCost;
  double total = 0.0;
  for (const auto& part : e.parts) {
    total += SubgraphCost(part);
    if (total == kInfiniteCost) break;
  }
  return total;
}

}  // namespace remi
