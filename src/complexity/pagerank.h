// PageRank over the KB's entity link graph.
//
// The paper's `pr` prominence metric is the Wikipedia page rank of an
// entity. Wikipedia's hyperlink graph is not available offline, so we
// compute PageRank on the closest endogenous equivalent: the directed
// entity-to-entity link graph induced by the KB's own facts (one edge per
// base fact whose subject and object are both entities). See DESIGN.md §5
// for why this preserves the fr/pr divergence the paper measures.

#pragma once

#include <unordered_map>

#include "kb/knowledge_base.h"

namespace remi {

/// PageRank parameters.
struct PageRankOptions {
  double damping = 0.85;
  int max_iterations = 50;
  /// Stop once the L1 change between iterations drops below this.
  double tolerance = 1e-10;
  /// Skip edges from materialized inverse facts (they duplicate base
  /// edges in the reverse direction).
  bool skip_inverse_predicates = true;
};

/// Computes PageRank scores for every entity of the KB. Scores sum to ~1.
std::unordered_map<TermId, double> ComputePageRank(
    const KnowledgeBase& kb, const PageRankOptions& options = {});

}  // namespace remi
