// The Ĉ cost model: estimated Kolmogorov complexity of expressions in bits
// (paper §3.1).
//
// A concept with prominence rank k costs log2(k) bits; chain-rule contexts
// narrow the ranking (once "mayor" is conveyed, only city mayors need to be
// discriminated). Per shape:
//
//   Ĉ(p(x,I))                   = l(p) + l(I | p)
//   Ĉ(p0(x,y) ∧ p1(y,I))        = l(p0) + l(p1 | p0⋈) + l(I | p0∧p1)
//   Ĉ(path + star leg p2(y,I2)) adds l(p2 | p0⋈) + l(I2 | p0∧p2)
//   Ĉ(p0(x,y) ∧ p1(x,y))        = l(p0) + l(p1 | p0 subject-join)
//   Ĉ(... ∧ p2(x,y))            adds l(p2 | p0 subject-join)
//   Ĉ(∧ᵢ ρᵢ)                    = Σᵢ Ĉ(ρᵢ)
//
// where p0⋈ is the first-to-second-argument join context of p0. The paper
// details the first three; the closed-shape charging is our documented
// interpretation (DESIGN.md §4). Two implementation modes follow §3.5.3:
// exact materialized rankings, or per-predicate power-law coefficients
// (Eq. 1) that estimate entity code lengths from conditional frequencies.

#pragma once

#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "complexity/prominence.h"
#include "complexity/rankings.h"
#include "query/expression.h"

namespace remi {

/// Configuration of the Ĉ estimator.
struct CostModelOptions {
  /// Entity prominence metric: Ĉfr or Ĉpr (paper §3.1).
  ProminenceMetric metric = ProminenceMetric::kFrequency;
  /// Use Eq. 1 fitted coefficients instead of exact entity ranks
  /// (paper §3.5.3 storage compression).
  bool use_fitted_entity_ranks = false;
  /// Condition predicate ranks on joins (§3.1 model). When false, the
  /// global predicate ranking is used everywhere (§3.5.3 notes the
  /// implementation evaluates predicates "against the same ranking").
  bool use_join_predicate_ranks = true;
};

/// \brief Computes Ĉ for subgraph expressions and conjunctions.
///
/// Owns the prominence provider and ranking service. Thread-safe; subgraph
/// costs are memoized.
class CostModel {
 public:
  /// Cost of the empty expression ⊤ and of unmatched concepts.
  static constexpr double kInfiniteCost =
      std::numeric_limits<double>::infinity();

  CostModel(const KnowledgeBase* kb, const CostModelOptions& options = {});

  /// Variant with an injected prominence provider (e.g. ExogenousProminence
  /// from a search-engine ranking, §6 future work). `options.metric` is
  /// ignored for entity rankings in this case.
  CostModel(const KnowledgeBase* kb, const CostModelOptions& options,
            std::unique_ptr<ProminenceProvider> provider);

  /// Ĉ(ρ) in bits; kInfiniteCost when a concept is unranked in its context
  /// (the expression then has no matches).
  double SubgraphCost(const SubgraphExpression& rho) const;

  /// Ĉ(e) = Σ Ĉ(ρᵢ); kInfiniteCost for ⊤ (paper's Ĉ(⊤) = ∞).
  double Cost(const Expression& e) const;

  // --- individual code lengths (exposed for tests and benches) -------------

  /// l(p) = log2 of the global predicate rank.
  double PredicateBits(TermId p) const;
  /// l(I | p).
  double ObjectBits(TermId obj, TermId p) const;
  /// l(S | p) for a subject constant (AMIE-style atoms p(S, y)).
  double SubjectBits(TermId subj, TermId p) const;
  /// l(q | p) in the first-to-second-argument join context.
  double ObjectJoinPredicateBits(TermId q, TermId p) const;
  /// l(q | p) in the subject-join context.
  double SubjectJoinPredicateBits(TermId q, TermId p) const;
  /// l(I | p0 ∧ p1).
  double PathObjectBits(TermId obj, TermId p0, TermId p1) const;

  const RankingService& rankings() const { return *rankings_; }
  const CostModelOptions& options() const { return options_; }
  const KnowledgeBase& kb() const { return *kb_; }

 private:
  double EntityBitsFromRanking(const ConditionalRanking& ranking,
                               TermId term) const;

  const KnowledgeBase* kb_;
  CostModelOptions options_;
  std::unique_ptr<ProminenceProvider> prominence_;
  std::unique_ptr<RankingService> rankings_;

  mutable std::mutex cost_mu_;
  mutable std::unordered_map<SubgraphExpression, double,
                             SubgraphExpressionHash>
      cost_cache_;
};

}  // namespace remi
