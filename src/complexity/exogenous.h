// Exogenous prominence (paper §6 future work): "investigate if external
// sources — such as the ranking provided by a search engine or external
// localized corpora — can yield even more intuitive REs".
//
// This provider loads term scores from a simple TSV source
// ("<iri>\t<score>" per line, '#' comments allowed) and serves them as a
// prominence metric. Terms absent from the source are undefined, so the
// RankingService falls back to conditional frequency for them — the same
// fallback rule the paper applies to pr ("we use fr whenever pr is
// undefined").

#pragma once

#include <string_view>
#include <unordered_map>

#include "complexity/prominence.h"
#include "util/status.h"

namespace remi {

/// \brief Prominence scores injected from an external corpus or engine.
class ExogenousProminence : public ProminenceProvider {
 public:
  /// Parses a TSV document of "<iri>\t<score>" lines. Unknown IRIs are
  /// retained only if present in the KB's dictionary.
  static Result<ExogenousProminence> FromTsv(const KnowledgeBase& kb,
                                             std::string_view tsv);

  /// Loads a TSV file from disk.
  static Result<ExogenousProminence> FromTsvFile(const KnowledgeBase& kb,
                                                 const std::string& path);

  double Score(TermId t) const override;
  bool Defined(TermId t) const override { return scores_.count(t) > 0; }
  /// Exogenous sources replace the page-rank slot in reporting.
  ProminenceMetric metric() const override {
    return ProminenceMetric::kPageRank;
  }

  size_t size() const { return scores_.size(); }

 private:
  std::unordered_map<TermId, double> scores_;
};

}  // namespace remi
