#include "complexity/rankings.h"

#include <algorithm>

namespace remi {

namespace {

uint64_t PackPair(TermId a, TermId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

RankingService::RankingService(const KnowledgeBase* kb,
                               const ProminenceProvider* prominence)
    : kb_(kb), prominence_(prominence), path_objects_(8192) {
  // Global predicate ranking by fact count (descending), ties by id so the
  // order is deterministic.
  std::vector<TermId> preds = kb_->store().predicates();
  std::sort(preds.begin(), preds.end(), [this](TermId a, TermId b) {
    const size_t fa = kb_->store().CountPredicate(a);
    const size_t fb = kb_->store().CountPredicate(b);
    if (fa != fb) return fa > fb;
    // Lexical tie-break so ranks are independent of interning order.
    return kb_->dict().lexical(a) < kb_->dict().lexical(b);
  });
  for (size_t i = 0; i < preds.size(); ++i) {
    predicate_ranking_[preds[i]] = i + 1;
  }
}

size_t RankingService::PredicateRank(TermId p) const {
  auto it = predicate_ranking_.find(p);
  return it == predicate_ranking_.end() ? 0 : it->second;
}

std::shared_ptr<const ConditionalRanking> RankingService::BuildEntityRanking(
    std::unordered_map<TermId, uint64_t> cond_freq) const {
  auto ranking = std::make_shared<ConditionalRanking>();
  std::vector<std::pair<TermId, uint64_t>> items(cond_freq.begin(),
                                                 cond_freq.end());
  const bool use_pr =
      prominence_->metric() == ProminenceMetric::kPageRank;
  std::sort(items.begin(), items.end(),
            [this, use_pr](const auto& a, const auto& b) {
              if (use_pr) {
                // pr mode: pr-defined terms first by pr, then the rest by
                // conditional frequency ("fr whenever pr is undefined").
                const bool da = prominence_->Defined(a.first);
                const bool db = prominence_->Defined(b.first);
                if (da != db) return da;
                if (da && db) {
                  const double sa = prominence_->Score(a.first);
                  const double sb = prominence_->Score(b.first);
                  if (sa != sb) return sa > sb;
                }
              }
              if (a.second != b.second) return a.second > b.second;
              // Conditional-frequency ties break by *global* prominence:
              // among equally rare objects the globally famous one is the
              // cheaper code (this is what makes "supervisor of the
              // supervisor of Einstein" beat "supervisor of Kleiner").
              const uint64_t ga = kb_->EntityFrequency(a.first);
              const uint64_t gb = kb_->EntityFrequency(b.first);
              if (ga != gb) return ga > gb;
              // Lexical tie-break: independent of interning order.
              return kb_->dict().lexical(a.first) <
                     kb_->dict().lexical(b.first);
            });
  ranking->rank.reserve(items.size());
  ranking->sorted_scores.reserve(items.size());
  double min_score = 0.0;
  for (size_t i = 0; i < items.size(); ++i) {
    ranking->rank[items[i].first] = i + 1;
    double score;
    if (use_pr && prominence_->Defined(items[i].first)) {
      score = prominence_->Score(items[i].first);
    } else {
      score = static_cast<double>(items[i].second);
    }
    ranking->sorted_scores.push_back(score);
    if (score > 0 && (min_score == 0.0 || score < min_score)) {
      min_score = score;
    }
  }
  ranking->min_score = min_score > 0 ? min_score : 1.0;
  // Eq. 1 fit on scores scaled so the minimum maps to frequency 1.
  std::vector<double> scaled;
  scaled.reserve(ranking->sorted_scores.size());
  for (double s : ranking->sorted_scores) {
    scaled.push_back(s / ranking->min_score);
  }
  ranking->fit = FitPowerLaw(scaled);
  return ranking;
}

std::shared_ptr<const ConditionalRanking>
RankingService::BuildPredicateRanking(
    std::unordered_map<TermId, uint64_t> counts) const {
  auto ranking = std::make_shared<ConditionalRanking>();
  std::vector<std::pair<TermId, uint64_t>> items(counts.begin(),
                                                 counts.end());
  std::sort(items.begin(), items.end(),
            [this](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return kb_->dict().lexical(a.first) <
                     kb_->dict().lexical(b.first);
            });
  ranking->rank.reserve(items.size());
  ranking->sorted_scores.reserve(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    ranking->rank[items[i].first] = i + 1;
    ranking->sorted_scores.push_back(static_cast<double>(items[i].second));
  }
  ranking->min_score = 1.0;
  ranking->fit = FitPowerLaw(ranking->sorted_scores);
  return ranking;
}

std::shared_ptr<const ConditionalRanking> RankingService::ObjectsOfPredicate(
    TermId p) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = objects_of_predicate_.find(p);
    if (it != objects_of_predicate_.end()) return it->second;
  }
  // Conditional frequency fr(I|p): number of facts p(s, I), read straight
  // off the per-predicate CSR degree table.
  const TripleStore& store = kb_->store();
  std::unordered_map<TermId, uint64_t> cond_freq;
  for (const TermId o : store.DistinctObjectsOf(p)) {
    cond_freq[o] = store.CountPredicateObject(p, o);
  }
  auto ranking = BuildEntityRanking(std::move(cond_freq));
  std::lock_guard<std::mutex> lock(mu_);
  return objects_of_predicate_.try_emplace(p, std::move(ranking))
      .first->second;
}

std::shared_ptr<const ConditionalRanking> RankingService::SubjectsOfPredicate(
    TermId p) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = subjects_of_predicate_.find(p);
    if (it != subjects_of_predicate_.end()) return it->second;
  }
  const TripleStore& store = kb_->store();
  std::unordered_map<TermId, uint64_t> cond_freq;
  for (const TermId s : store.DistinctSubjectsOf(p)) {
    cond_freq[s] = store.CountPredicateSubject(p, s);
  }
  auto ranking = BuildEntityRanking(std::move(cond_freq));
  std::lock_guard<std::mutex> lock(mu_);
  return subjects_of_predicate_.try_emplace(p, std::move(ranking))
      .first->second;
}

std::shared_ptr<const ConditionalRanking>
RankingService::ObjectJoinPredicates(TermId p) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = object_join_predicates_.find(p);
    if (it != object_join_predicates_.end()) return it->second;
  }
  // Count facts q(y, ·) whose subject y is an object of p.
  std::unordered_map<TermId, uint64_t> counts;
  for (const TermId y : kb_->store().DistinctObjectsOf(p)) {
    for (const Triple& t : kb_->store().BySubject(y)) {
      ++counts[t.p];
    }
  }
  auto ranking = BuildPredicateRanking(std::move(counts));
  std::lock_guard<std::mutex> lock(mu_);
  return object_join_predicates_.try_emplace(p, std::move(ranking))
      .first->second;
}

std::shared_ptr<const ConditionalRanking>
RankingService::SubjectJoinPredicates(TermId p) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = subject_join_predicates_.find(p);
    if (it != subject_join_predicates_.end()) return it->second;
  }
  // Count facts q(s, ·) whose subject s is also a subject of p.
  std::unordered_map<TermId, uint64_t> counts;
  for (const TermId s : kb_->store().DistinctSubjectsOf(p)) {
    for (const Triple& t : kb_->store().BySubject(s)) {
      ++counts[t.p];
    }
  }
  auto ranking = BuildPredicateRanking(std::move(counts));
  std::lock_guard<std::mutex> lock(mu_);
  return subject_join_predicates_.try_emplace(p, std::move(ranking))
      .first->second;
}

std::shared_ptr<const ConditionalRanking> RankingService::PathObjects(
    TermId p0, TermId p1) const {
  const uint64_t key = PackPair(p0, p1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto hit = path_objects_.Get(key)) return *hit;
  }
  // Bindings of z in p0(x,y) ∧ p1(y,z), weighted by (y,z) pair counts.
  std::unordered_map<TermId, uint64_t> cond_freq;
  for (const TermId y : kb_->store().DistinctObjectsOf(p0)) {
    for (const Triple& t : kb_->store().ByPredicateSubject(p1, y)) {
      ++cond_freq[t.o];
    }
  }
  auto ranking = BuildEntityRanking(std::move(cond_freq));
  std::lock_guard<std::mutex> lock(mu_);
  path_objects_.Put(key, ranking);
  return ranking;
}

size_t RankingService::NumMaterializedRankings() const {
  std::lock_guard<std::mutex> lock(mu_);
  return objects_of_predicate_.size() + subjects_of_predicate_.size() +
         object_join_predicates_.size() + subject_join_predicates_.size() +
         path_objects_.size();
}

}  // namespace remi
