#include "complexity/pagerank.h"

#include <cmath>
#include <vector>

namespace remi {

std::unordered_map<TermId, double> ComputePageRank(
    const KnowledgeBase& kb, const PageRankOptions& options) {
  // Dense node numbering over entities.
  const auto& entities = kb.EntitiesByProminence();
  std::unordered_map<TermId, size_t> node_of;
  node_of.reserve(entities.size());
  for (size_t i = 0; i < entities.size(); ++i) node_of[entities[i]] = i;
  const size_t n = entities.size();
  if (n == 0) return {};

  // CSR out-edge lists.
  std::vector<std::vector<uint32_t>> out_edges(n);
  for (const Triple& t : kb.store().spo()) {
    if (options.skip_inverse_predicates && kb.IsInversePredicate(t.p)) {
      continue;
    }
    auto si = node_of.find(t.s);
    auto oi = node_of.find(t.o);
    if (si == node_of.end() || oi == node_of.end()) continue;
    if (si->second == oi->second) continue;  // self-loops add nothing
    out_edges[si->second].push_back(static_cast<uint32_t>(oi->second));
  }

  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  const double d = options.damping;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (out_edges[i].empty()) {
        dangling += rank[i];
        continue;
      }
      const double share = rank[i] / static_cast<double>(out_edges[i].size());
      for (const uint32_t j : out_edges[i]) next[j] += share;
    }
    const double base =
        (1.0 - d) / static_cast<double>(n) + d * dangling / static_cast<double>(n);
    double delta = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double v = base + d * next[i];
      delta += std::fabs(v - rank[i]);
      rank[i] = v;
    }
    if (delta < options.tolerance) break;
  }

  std::unordered_map<TermId, double> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out[entities[i]] = rank[i];
  return out;
}

}  // namespace remi
