// A template-based verbalizer: expressions -> English-ish sentences.
//
// The paper's motivating application is natural language generation; the
// user studies "manually translated the subgraph expressions to natural
// language statements in the shortest possible way by using the textual
// descriptions (predicate rdfs:label) of the concepts". This module does
// that mechanically: per-shape templates filled with rdfs:label text
// (falling back to prettified IRI local names).

#pragma once

#include <string>

#include "kb/knowledge_base.h"
#include "query/expression.h"

namespace remi {

/// Verbalization options.
struct VerbalizerOptions {
  /// Subject placeholder, e.g. "it" or "x".
  std::string subject = "it";
  /// Capitalize the first letter of the sentence.
  bool capitalize = true;
};

/// \brief Renders expressions as English-ish text.
class Verbalizer {
 public:
  explicit Verbalizer(const KnowledgeBase* kb,
                      const VerbalizerOptions& options = {});

  /// One clause for a subgraph expression, e.g.
  /// "its capital of is France" -> "its capitalOf is France";
  /// paths read "it has a mayor whose party is Socialist Party".
  std::string Clause(const SubgraphExpression& rho) const;

  /// A full sentence for an expression: clauses joined with "and",
  /// terminated with a period.
  std::string Sentence(const Expression& e) const;

  /// Label of a term (rdfs:label or prettified local name).
  std::string Label(TermId t) const;

 private:
  /// Predicate label with inverse predicates rendered as "<base> of".
  std::string PredicateLabel(TermId p) const;

  const KnowledgeBase* kb_;
  VerbalizerOptions options_;
};

}  // namespace remi
