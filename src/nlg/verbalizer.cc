#include "nlg/verbalizer.h"

namespace remi {

Verbalizer::Verbalizer(const KnowledgeBase* kb,
                       const VerbalizerOptions& options)
    : kb_(kb), options_(options) {}

std::string Verbalizer::Label(TermId t) const { return kb_->Label(t); }

std::string Verbalizer::PredicateLabel(TermId p) const {
  if (kb_->IsInversePredicate(p)) {
    return Label(kb_->BasePredicateOf(p)) + " of";
  }
  return Label(p);
}

std::string Verbalizer::Clause(const SubgraphExpression& rho) const {
  const std::string& subj = options_.subject;
  // English possessive: "it" -> "its", everything else -> "<subj>'s".
  const std::string poss = subj == "it" ? "its" : subj + "'s";
  switch (rho.shape) {
    case SubgraphShape::kAtom: {
      if (rho.p0 == kb_->type_predicate()) {
        return subj + " is a " + Label(rho.c1);
      }
      return poss + " " + PredicateLabel(rho.p0) + " is " + Label(rho.c1);
    }
    case SubgraphShape::kPath:
      return subj + " has a " + PredicateLabel(rho.p0) + " whose " +
             PredicateLabel(rho.p1) + " is " + Label(rho.c1);
    case SubgraphShape::kPathStar:
      return subj + " has a " + PredicateLabel(rho.p0) + " whose " +
             PredicateLabel(rho.p1) + " is " + Label(rho.c1) +
             " and whose " + PredicateLabel(rho.p2) + " is " + Label(rho.c2);
    case SubgraphShape::kTwinPair:
      return poss + " " + PredicateLabel(rho.p0) + " and " +
             PredicateLabel(rho.p1) + " are the same";
    case SubgraphShape::kTwinTriple:
      return poss + " " + PredicateLabel(rho.p0) + ", " +
             PredicateLabel(rho.p1) + " and " + PredicateLabel(rho.p2) +
             " are all the same";
  }
  return "?";
}

std::string Verbalizer::Sentence(const Expression& e) const {
  if (e.IsTop()) return "anything.";
  std::string out;
  for (size_t i = 0; i < e.parts.size(); ++i) {
    if (i > 0) out += " and ";
    out += Clause(e.parts[i]);
  }
  if (options_.capitalize && !out.empty() && out[0] >= 'a' && out[0] <= 'z') {
    out[0] = static_cast<char>(out[0] - 'a' + 'A');
  }
  out += ".";
  return out;
}

}  // namespace remi
