// REMI and P-REMI: cost-ordered DFS for minimal-Ĉ referring expressions
// (paper §3.3 Alg. 1 + 2, §3.4 Alg. 3).
//
// Search space: conjunctions of the subgraph expressions common to the
// targets, ordered by ascending Ĉ. The DFS applies the paper's prunings:
//   * depth pruning  — an RE's descendants are REs of strictly higher Ĉ,
//     so the subtree below a found RE is abandoned;
//   * side pruning   — siblings following a found RE (and their subtrees)
//     cost at least as much, so they are skipped;
//   * best-bound     — any node with Ĉ ≥ Ĉ(best) is cut (Alg. 3 line 6;
//     sound for the sequential search as well since Ĉ is monotone);
//   * no-solution    — if the subtree rooted at the cheapest expression is
//     exhausted with no RE found, the full conjunction is not an RE and no
//     RE exists (Alg. 1 line 8).
//
// P-REMI runs the per-root subtrees on a long-lived work-stealing thread
// pool with a shared, mutex-guarded best solution and a shared stop
// signal. Workers dequeue roots in ascending-Ĉ order, and additionally
// spill sibling sub-ranges of the DFS to the pool while other workers are
// idle (lazy binary splitting), so one skewed subtree no longer stalls the
// whole run. When the *cheapest* root's subtree is exhausted without any
// global solution, no RE exists at all (conjoining the cheapest common
// subgraph to any RE yields an RE inside that subtree), and all workers
// are signalled to stop (paper §3.4, difference #2).
//
// MineBatch schedules many independent target sets on the same pool with
// the shared warm evaluator cache — the paper's cost-vs-users scenario
// (Table 2) where one KB serves many concurrent referring-expression
// queries.
//
// Because G contains only *common* subgraph expressions, every conjunction
// of them matches every target; the DFS therefore maintains the exact match
// set incrementally and an RE test is a size comparison.
//
// The search inner loop is a zero-allocation kernel: queue match sets are
// resolved once after RankedCommonSubgraphs and pinned as flat views (no
// per-node EvalCache lookups), nodes are first decided by a count-only
// intersection (EntitySet::IntersectCount) and only materialized — into
// reusable per-depth arena frames via EntitySet::IntersectInto — when the
// DFS actually descends, and expressions are rebuilt from the winning
// queue-index path at the end instead of being conjoined per node. The
// RemiStats arena/pin counters certify the discipline at runtime.

#pragma once

#include <memory>
#include <vector>

#include "complexity/cost_model.h"
#include "query/evaluator.h"
#include "remi/enumerator.h"
#include "util/cancellation.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace remi {

/// Full configuration of a mining run.
struct RemiOptions {
  CostModelOptions cost;
  EnumeratorOptions enumerator;

  /// Worker threads; 1 = sequential REMI, >1 = P-REMI. The miner owns one
  /// long-lived work-stealing pool of this size, reused across MineRe and
  /// MineBatch calls.
  int num_threads = 1;

  /// Clamp num_threads to std::thread::hardware_concurrency() (when the
  /// runtime can report it). Oversubscribing a machine with more workers
  /// than cores only adds context-switch and wake-up overhead to P-REMI's
  /// latency-bound searches, so production configs keep this on; tests
  /// that deliberately oversubscribe to exercise concurrency interleavings
  /// switch it off. See EffectiveThreads().
  bool clamp_threads_to_hardware = true;

  /// Byte budget for the search kernel's pinned queue views (the
  /// forced-bitmap twins have their own separate 64 MiB budget; see
  /// remi.cc). The pinning pass resolves queue entries in queue order —
  /// cheapest Ĉ first, i.e. the entries the DFS visits most — and stops
  /// pinning once the resident view bytes would exceed this budget;
  /// unpinned entries fall back to per-node evaluator lookups (counted in
  /// RemiStats::unpinned_queue_entries and search_cache_lookups). 0 means
  /// unlimited: every entry is pinned and the DFS issues no cache lookups.
  size_t max_pinned_bytes = 0;

  /// num_threads after the hardware clamp: what the miner actually uses.
  int EffectiveThreads() const;

  /// P-REMI only: DFS levels at depth <= spill_depth may hand the upper
  /// half of their unexplored sibling range to the pool when workers are
  /// idle. 0 disables spilling (per-root parallelism only).
  int spill_depth = 2;

  /// Per-call timeout in seconds; 0 disables (paper §4.2 uses 2h).
  double timeout_seconds = 0.0;

  /// Ablation switches (all on = the paper's algorithm).
  bool depth_pruning = true;
  bool side_pruning = true;
  bool best_bound_pruning = true;

  /// LRU capacity of the evaluator's match-set cache (§3.5.2); 0 disables.
  size_t eval_cache_capacity = 65536;

  /// Shard count of the match-set cache (lock striping for concurrent
  /// Match() calls); 0 = EvalCache::kDefaultShards.
  size_t eval_cache_shards = 0;
};

/// Per-call execution control, carried by Service requests: an absolute
/// deadline and a cooperative cancellation token. Both are polled at every
/// search-tree node of the REMI/P-REMI DFS (including spilled subtree
/// tasks) and periodically during queue costing, so an expired or
/// cancelled run stops within one node/chunk evaluation and returns its
/// partial stats. (Subgraph enumeration itself is not checkpointed; it is
/// polynomial in the target neighbourhood, unlike the DFS.) A
/// default-constructed MineControl never interrupts anything. The deadline
/// combines with the miner's RemiOptions::timeout_seconds: whichever
/// expires first wins.
struct MineControl {
  Deadline deadline;
  CancellationToken cancel;
};

/// Counters describing one mining run.
struct RemiStats {
  size_t num_common_subgraphs = 0;  ///< |G| after Alg. 1 line 1
  uint64_t nodes_visited = 0;       ///< search-tree nodes (RE tests)
  uint64_t depth_prunes = 0;
  uint64_t side_prunes = 0;
  uint64_t bound_prunes = 0;
  /// Conjuncts skipped because they did not shrink the match set (their
  /// subtrees are dominated by cheaper equivalents).
  uint64_t redundant_prunes = 0;

  // --- Zero-allocation kernel counters (README "Search kernel & memory
  // layout"). Together they certify the steady-state discipline: DFS
  // nodes index the pinned queue views instead of the EvalCache, and
  // either decide on a count alone or materialize into a reused arena
  // frame.
  /// DFS nodes decided by IntersectCount alone (redundant-pruned or
  /// accepted-and-depth-pruned): no match set was materialized for them.
  uint64_t count_only_prunes = 0;
  /// Arena frames created (first descent of a worker/task to a depth).
  uint64_t arena_frames_allocated = 0;
  /// Frame acquisitions served by an already-existing frame; every one of
  /// these is a node materialization with no per-node heap allocation.
  uint64_t arena_frames_reused = 0;
  /// Queue entries whose match sets were resolved once and pinned for the
  /// whole search, and the heap bytes those views keep resident. Pinning
  /// holds every entry's set alive for the search regardless of the
  /// EvalCache's LRU capacity, so a request's peak match-set memory is
  /// bounded by its queue (Σ match-set sizes, observable here), not by
  /// the cache budget. `pinned_queue_bytes` counts exactly the view bytes
  /// RemiOptions::max_pinned_bytes is charged against; the forced-bitmap
  /// twins are accounted separately in `dense_twin_bytes` and respect
  /// their own hard byte budget (see remi.cc).
  size_t pinned_queue_entries = 0;
  size_t pinned_queue_bytes = 0;
  /// Heap bytes of the forced-bitmap twins built for vector-rep pinned
  /// entries (0 when the twin pass was skipped or every entry was already
  /// a bitmap).
  size_t dense_twin_bytes = 0;
  /// Queue entries left unpinned by RemiOptions::max_pinned_bytes; the DFS
  /// resolves them per node through the evaluator (and its cache) instead
  /// of a pinned view. 0 whenever the budget is unlimited or large enough.
  size_t unpinned_queue_entries = 0;
  /// EvalCache lookups issued during the DFS itself — 0 in steady state
  /// (the pinning pass and cross-request reuse still go through the
  /// cache; only per-node lookups are outlawed). Measured as a delta of
  /// the evaluator's shared counters over the search phase, so like the
  /// `eval` fields it can be inflated by *concurrent* runs sharing the
  /// miner or cache (the DFS itself never touches the cache); it is
  /// exact for a miner serving one request at a time.
  uint64_t search_cache_lookups = 0;

  double queue_build_seconds = 0.0;  ///< Alg. 1 lines 1-2
  /// Alg. 1 lines 4-8, including the one-time pinning of the queue's
  /// match-set views (work the previous kernel paid per node instead).
  double search_seconds = 0.0;
  EvaluatorStats eval;
};

/// Outcome of one mining run.
struct RemiResult {
  /// The minimal-Ĉ referring expression; Top() when none exists.
  Expression expression;
  double cost = CostModel::kInfiniteCost;
  bool found = false;
  bool timed_out = false;
  /// The run was stopped by its MineControl cancellation token.
  bool cancelled = false;
  /// Non-target entities matched by the expression. Empty for strict REs;
  /// at most `max_exceptions` entries for MineReWithExceptions.
  std::vector<TermId> exceptions;
  RemiStats stats;
};

/// A subgraph expression with its Ĉ (the priority-queue element).
struct RankedSubgraph {
  SubgraphExpression expression;
  double cost = 0.0;
};

/// \brief The REMI miner. Reusable across many target sets; the cost
/// model's rankings and the evaluator's cache warm up across calls.
class RemiMiner {
 public:
  /// \param kb the KB (not owned; must outlive the miner)
  RemiMiner(const KnowledgeBase* kb, const RemiOptions& options = {});

  /// Variant for the Service layer: `shared_pool` (not owned, may be
  /// null) replaces the miner's own pool when options.num_threads > 1,
  /// and `shared_cache` (may be null) backs the evaluator so several
  /// miners over the same KB share one warm match-set cache. Both must
  /// outlive the miner.
  RemiMiner(const KnowledgeBase* kb, const RemiOptions& options,
            ThreadPool* shared_pool, std::shared_ptr<EvalCache> shared_cache);

  /// Mines the most intuitive RE for `targets` (Alg. 1).
  /// Fails with InvalidArgument on an empty target set.
  Result<RemiResult> MineRe(const std::vector<TermId>& targets,
                            const MineControl& control = {}) const;

  /// §6 future work ("relax the unambiguity constraint to mine REs with
  /// exceptions"): mines the cheapest expression that matches every
  /// target plus at most `max_exceptions` other entities. The exceptions
  /// are reported in RemiResult::exceptions. With max_exceptions = 0 this
  /// is exactly MineRe. All prunings stay sound because conjoining only
  /// shrinks match sets, so an accepting node's descendants are accepting
  /// but more complex.
  Result<RemiResult> MineReWithExceptions(
      const std::vector<TermId>& targets, size_t max_exceptions,
      const MineControl& control = {}) const;

  /// Mines every target set of a batch, scheduling the independent runs
  /// on the miner's pool (one run per worker at a time) with the shared
  /// warm match-set cache — the "many concurrent users, one KB" workload
  /// of the paper's runtime study. With num_threads <= 1 the sets are
  /// mined sequentially, producing byte-identical results to per-set
  /// MineRe calls. Fails if any set is empty. Note: when runs execute
  /// concurrently, the per-result `stats.eval` deltas may include sibling
  /// runs' evaluator activity.
  Result<std::vector<RemiResult>> MineBatch(
      const std::vector<std::vector<TermId>>& target_sets,
      size_t max_exceptions = 0, const MineControl& control = {}) const;

  /// The priority queue of Alg. 1 line 2: common subgraph expressions
  /// sorted by ascending Ĉ (ties broken deterministically). Used directly
  /// by the Table 2 / Table 3 harnesses. `control` is polled during the
  /// Ĉ-evaluation loop: an interrupted call fails with DeadlineExceeded /
  /// Cancelled instead of running the whole costing pass.
  Result<std::vector<RankedSubgraph>> RankedCommonSubgraphs(
      const MatchSet& targets, const MineControl& control = {}) const;

  /// Convenience overload; duplicates in `targets` are ignored.
  Result<std::vector<RankedSubgraph>> RankedCommonSubgraphs(
      const std::vector<TermId>& targets,
      const MineControl& control = {}) const;

  const CostModel& cost_model() const { return *cost_model_; }
  Evaluator* evaluator() const { return evaluator_.get(); }
  const RemiOptions& options() const { return options_; }
  const KnowledgeBase& kb() const { return *kb_; }

 private:
  struct SearchShared;
  /// Tracks the outstanding DFS tasks (inline exploration + spilled
  /// sub-ranges) of one root's subtree, so P-REMI knows when the subtree
  /// is *fully* explored even though its work is spread across tasks.
  struct RootTracker;
  /// Per-worker pool of reusable per-depth MatchSet frames; see remi.cc.
  struct SearchArena;

  /// One mining run over an already-sorted target set. `pool` non-null
  /// runs P-REMI on it; null runs the sequential algorithm (also used for
  /// batch items, which parallelize across sets instead of within one).
  Result<RemiResult> MineCore(const MatchSet& sorted_targets,
                              size_t max_exceptions, ThreadPool* pool,
                              const MineControl& control) const;

  /// Explores the subtree rooted at queue index `root` (DFS-REMI /
  /// P-DFS-REMI). Returns true if the subtree was fully explored (i.e. not
  /// cut by the timeout).
  bool ExploreRoot(size_t root, SearchShared* shared,
                   const std::shared_ptr<RootTracker>& tracker,
                   SearchArena* arena) const;

  /// DFS over the sibling range [next_index, level_end) extending the
  /// prefix whose match set is `prefix_matches`. Children recurse over
  /// the full remaining queue; level_end only bounds this level, so a
  /// spilled upper half covers exactly the subtrees the spiller skips.
  /// `path` holds the queue indices of the prefix (mutated push/pop along
  /// the recursion); it both feeds the preorder tie-break in UpdateBest
  /// and *is* the node identity — the winning Expression is only
  /// materialized from the best path during result assembly, so no node
  /// pays a Conjoin copy. `arena` supplies the per-depth match-set frames
  /// this worker/task intersects into.
  void Dfs(const MatchSet& prefix_matches, double prefix_cost,
           size_t next_index, size_t level_end, SearchShared* shared,
           int depth, const std::shared_ptr<RootTracker>& tracker,
           std::vector<size_t>* path, SearchArena* arena) const;

  /// Marks one of `tracker`'s tasks finished; the last task out signals
  /// the no-solution stop if the exhausted root was the cheapest one.
  void FinishRootTask(const std::shared_ptr<RootTracker>& tracker,
                      SearchShared* shared) const;

  const KnowledgeBase* kb_;
  RemiOptions options_;
  std::unique_ptr<Evaluator> evaluator_;
  std::unique_ptr<CostModel> cost_model_;
  std::unique_ptr<SubgraphEnumerator> enumerator_;
  /// Long-lived work-stealing pool, shared by P-REMI subtree tasks, queue
  /// construction and MineBatch runs. Owned unless an external pool was
  /// injected (Service mode); null when num_threads <= 1.
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace remi
