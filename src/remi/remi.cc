#include "remi/remi.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace remi {

struct RemiMiner::SearchShared {
  const std::vector<RankedSubgraph>* queue = nullptr;
  const MatchSet* targets = nullptr;
  /// Acceptance threshold: |T| for strict REs, |T| + k with exceptions.
  size_t max_matches = 0;
  Deadline deadline;

  std::atomic<bool> stop{false};
  std::atomic<bool> timed_out{false};

  // Authoritative best under mutex; relaxed mirror for cheap bound reads.
  std::mutex best_mu;
  Expression best_expr;
  MatchSet best_matches;
  double best_cost = CostModel::kInfiniteCost;
  std::atomic<double> best_cost_relaxed{CostModel::kInfiniteCost};

  std::atomic<uint64_t> nodes{0};
  std::atomic<uint64_t> depth_prunes{0};
  std::atomic<uint64_t> side_prunes{0};
  std::atomic<uint64_t> bound_prunes{0};
  std::atomic<uint64_t> redundant_prunes{0};

  bool HasSolution() const {
    return best_cost_relaxed.load(std::memory_order_relaxed) <
           CostModel::kInfiniteCost;
  }

  /// Records a found RE; ties in cost break on the deterministic
  /// expression order so REMI and P-REMI agree.
  void UpdateBest(const Expression& expr, double cost,
                  const MatchSet& matches) {
    std::lock_guard<std::mutex> lock(best_mu);
    const bool better =
        cost < best_cost ||
        (cost == best_cost && !best_expr.IsTop() &&
         std::lexicographical_compare(expr.parts.begin(), expr.parts.end(),
                                      best_expr.parts.begin(),
                                      best_expr.parts.end()));
    if (better) {
      best_expr = expr;
      best_matches = matches;
      best_cost = cost;
      best_cost_relaxed.store(cost, std::memory_order_relaxed);
    }
  }

  bool CheckDeadline() {
    if (deadline.Expired()) {
      timed_out.store(true, std::memory_order_relaxed);
      stop.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }
};

RemiMiner::RemiMiner(const KnowledgeBase* kb, const RemiOptions& options)
    : kb_(kb),
      options_(options),
      evaluator_(std::make_unique<Evaluator>(kb, options.eval_cache_capacity)),
      cost_model_(std::make_unique<CostModel>(kb, options.cost)),
      enumerator_(
          std::make_unique<SubgraphEnumerator>(evaluator_.get(),
                                               options.enumerator)) {}

Result<std::vector<RankedSubgraph>> RemiMiner::RankedCommonSubgraphs(
    const std::vector<TermId>& targets) const {
  return RankedCommonSubgraphs(MatchSet(targets.begin(), targets.end()));
}

Result<std::vector<RankedSubgraph>> RemiMiner::RankedCommonSubgraphs(
    const MatchSet& targets) const {
  if (targets.empty()) {
    return Status::InvalidArgument("target set is empty");
  }
  std::vector<SubgraphExpression> common =
      enumerator_->CommonSubgraphs(targets);

  std::vector<RankedSubgraph> ranked(common.size());
  if (options_.num_threads > 1 && common.size() > 64) {
    // Paper §3.5.2: the construction and sorting of the queue is
    // parallelized (Ĉ evaluation dominates this phase).
    ThreadPool pool(static_cast<size_t>(options_.num_threads));
    const size_t chunk = (common.size() + pool.num_threads() - 1) /
                         pool.num_threads();
    for (size_t begin = 0; begin < common.size(); begin += chunk) {
      const size_t end = std::min(begin + chunk, common.size());
      pool.Submit([this, &common, &ranked, begin, end] {
        for (size_t i = begin; i < end; ++i) {
          ranked[i] = RankedSubgraph{common[i],
                                     cost_model_->SubgraphCost(common[i])};
        }
      });
    }
    pool.Wait();
  } else {
    for (size_t i = 0; i < common.size(); ++i) {
      ranked[i] =
          RankedSubgraph{common[i], cost_model_->SubgraphCost(common[i])};
    }
  }

  // Drop unusable entries (no finite code length) and sort ascending by
  // (Ĉ, expression order) for a deterministic queue.
  ranked.erase(std::remove_if(ranked.begin(), ranked.end(),
                              [](const RankedSubgraph& r) {
                                return r.cost == CostModel::kInfiniteCost;
                              }),
               ranked.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedSubgraph& a, const RankedSubgraph& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              return a.expression < b.expression;
            });
  return ranked;
}

void RemiMiner::Dfs(const Expression& prefix, const MatchSet& prefix_matches,
                    double prefix_cost, size_t next_index,
                    SearchShared* shared, int depth) const {
  const auto& queue = *shared->queue;
  for (size_t j = next_index; j < queue.size(); ++j) {
    if (shared->stop.load(std::memory_order_relaxed)) return;
    if (shared->CheckDeadline()) return;

    const double cost = prefix_cost + queue[j].cost;
    if (shared->HasSolution() &&
        cost >= shared->best_cost_relaxed.load(std::memory_order_relaxed)) {
      shared->bound_prunes.fetch_add(1, std::memory_order_relaxed);
      if (options_.best_bound_pruning) {
        // The queue is cost-sorted: every later sibling (and its subtree)
        // costs at least this much (Alg. 3 line 6).
        return;
      }
    }

    MatchSet matches =
        prefix_matches.Intersect(*evaluator_->Match(queue[j].expression));
    shared->nodes.fetch_add(1, std::memory_order_relaxed);
    if (matches.size() == prefix_matches.size()) {
      // ρj did not shrink the match set, so for every extension X,
      // prefix ∧ ρj ∧ X matches exactly what prefix ∧ X matches but costs
      // strictly more: the whole subtree is dominated. This keeps the
      // no-solution and near-fixpoint regions of the search polynomial
      // instead of exponential (see DESIGN.md §4).
      shared->redundant_prunes.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // G holds only common subgraphs, so T ⊆ matches is invariant and the
    // accepting test reduces to a cardinality check (== |T| for strict
    // REs, <= |T| + k with exceptions).
    const bool is_re = matches.size() <= shared->max_matches;
    const Expression node = prefix.Conjoin(queue[j].expression);

    if (is_re) {
      shared->UpdateBest(node, cost, matches);
      if (options_.depth_pruning) {
        shared->depth_prunes.fetch_add(1, std::memory_order_relaxed);
      } else {
        Dfs(node, matches, cost, j + 1, shared, depth + 1);
      }
      if (options_.side_pruning) {
        shared->side_prunes.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    } else {
      Dfs(node, matches, cost, j + 1, shared, depth + 1);
    }
  }
}

bool RemiMiner::ExploreRoot(size_t root, SearchShared* shared) const {
  if (shared->stop.load(std::memory_order_relaxed)) return false;
  const auto& queue = *shared->queue;
  const RankedSubgraph& rho = queue[root];

  if (shared->HasSolution() &&
      rho.cost >= shared->best_cost_relaxed.load(std::memory_order_relaxed)) {
    shared->bound_prunes.fetch_add(1, std::memory_order_relaxed);
    return true;  // nothing cheaper can exist below this root
  }

  std::shared_ptr<const MatchSet> matches = evaluator_->Match(rho.expression);
  shared->nodes.fetch_add(1, std::memory_order_relaxed);
  const Expression expr = Expression::Top().Conjoin(rho.expression);
  if (matches->size() <= shared->max_matches) {
    shared->UpdateBest(expr, rho.cost, *matches);
    shared->depth_prunes.fetch_add(1, std::memory_order_relaxed);
  } else {
    Dfs(expr, *matches, rho.cost, root + 1, shared, 1);
  }
  return !shared->timed_out.load(std::memory_order_relaxed);
}

Result<RemiResult> RemiMiner::MineRe(
    const std::vector<TermId>& targets) const {
  return MineReWithExceptions(targets, 0);
}

Result<RemiResult> RemiMiner::MineReWithExceptions(
    const std::vector<TermId>& targets, size_t max_exceptions) const {
  if (targets.empty()) {
    return Status::InvalidArgument("target set is empty");
  }
  // The EntitySet range constructor sorts and deduplicates.
  const MatchSet sorted_targets(targets.begin(), targets.end());

  RemiResult result;
  const EvaluatorStats eval_before = evaluator_->stats();

  Timer build_timer;
  auto ranked = RankedCommonSubgraphs(sorted_targets);
  if (!ranked.ok()) return ranked.status();
  result.stats.num_common_subgraphs = ranked->size();
  result.stats.queue_build_seconds = build_timer.ElapsedSeconds();

  SearchShared shared;
  shared.queue = &*ranked;
  shared.targets = &sorted_targets;
  shared.max_matches = sorted_targets.size() + max_exceptions;
  if (options_.timeout_seconds > 0) {
    const double remaining =
        options_.timeout_seconds - result.stats.queue_build_seconds;
    shared.deadline = Deadline::AfterSeconds(remaining > 0 ? remaining : 0);
  }

  Timer search_timer;
  const size_t n = ranked->size();

  // Proactive Alg. 1 line 8: the conjunction of *all* common subgraph
  // expressions is the most specific expression in the search space. If
  // even that matches more than |T| + k entities, no accepting expression
  // exists and the (worst-case exponential) exhaustive exploration of the
  // first root can be skipped entirely.
  if (n > 0) {
    MatchSet everything = *evaluator_->Match((*ranked)[0].expression);
    for (size_t i = 1;
         i < n && everything.size() > shared.max_matches &&
         !shared.CheckDeadline();
         ++i) {
      everything =
          everything.Intersect(*evaluator_->Match((*ranked)[i].expression));
    }
    if (everything.size() > shared.max_matches &&
        !shared.timed_out.load(std::memory_order_relaxed)) {
      result.stats.search_seconds = search_timer.ElapsedSeconds();
      result.found = false;
      result.timed_out = false;
      const EvaluatorStats eval_now = evaluator_->stats();
      result.stats.eval.subgraph_evaluations =
          eval_now.subgraph_evaluations - eval_before.subgraph_evaluations;
      result.stats.eval.membership_tests =
          eval_now.membership_tests - eval_before.membership_tests;
      result.stats.eval.cache_hits =
          eval_now.cache_hits - eval_before.cache_hits;
      result.stats.eval.cache_misses =
          eval_now.cache_misses - eval_before.cache_misses;
      return result;
    }
  }

  if (options_.num_threads <= 1) {
    // Alg. 1: dequeue roots in ascending Ĉ order.
    for (size_t i = 0; i < n; ++i) {
      if (shared.stop.load(std::memory_order_relaxed)) break;
      if (shared.HasSolution() &&
          (*ranked)[i].cost >=
              shared.best_cost_relaxed.load(std::memory_order_relaxed)) {
        break;  // all remaining roots are at least as expensive
      }
      const bool fully_explored = ExploreRoot(i, &shared);
      if (fully_explored && !shared.HasSolution()) {
        // Alg. 1 line 8: the exhausted subtree contained the most specific
        // conjunction reachable from here; no RE exists.
        break;
      }
    }
  } else {
    // P-REMI (§3.4): threads concurrently dequeue roots.
    std::atomic<size_t> next_root{0};
    ThreadPool pool(static_cast<size_t>(options_.num_threads));
    for (size_t w = 0; w < pool.num_threads(); ++w) {
      pool.Submit([this, &shared, &next_root, n] {
        for (;;) {
          const size_t i =
              next_root.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          if (shared.stop.load(std::memory_order_relaxed)) return;
          if (shared.HasSolution() &&
              (*shared.queue)[i].cost >=
                  shared.best_cost_relaxed.load(std::memory_order_relaxed)) {
            return;  // ascending costs: no later root can win
          }
          const bool fully_explored = ExploreRoot(i, &shared);
          if (fully_explored && !shared.HasSolution()) {
            // §3.4 difference #2: signal the other threads that no RE
            // exists anywhere.
            shared.stop.store(true, std::memory_order_relaxed);
            return;
          }
        }
      });
    }
    pool.Wait();
  }
  result.stats.search_seconds = search_timer.ElapsedSeconds();

  {
    std::lock_guard<std::mutex> lock(shared.best_mu);
    result.expression = shared.best_expr;
    result.cost = shared.best_cost;
    // Exceptions: the matched non-targets of the winning expression.
    for (const TermId m : shared.best_matches) {
      if (!sorted_targets.Contains(m)) result.exceptions.push_back(m);
    }
  }
  result.found = result.cost < CostModel::kInfiniteCost;
  result.timed_out = shared.timed_out.load(std::memory_order_relaxed);
  result.stats.nodes_visited = shared.nodes.load(std::memory_order_relaxed);
  result.stats.depth_prunes =
      shared.depth_prunes.load(std::memory_order_relaxed);
  result.stats.side_prunes =
      shared.side_prunes.load(std::memory_order_relaxed);
  result.stats.bound_prunes =
      shared.bound_prunes.load(std::memory_order_relaxed);
  result.stats.redundant_prunes =
      shared.redundant_prunes.load(std::memory_order_relaxed);

  const EvaluatorStats eval_after = evaluator_->stats();
  result.stats.eval.subgraph_evaluations =
      eval_after.subgraph_evaluations - eval_before.subgraph_evaluations;
  result.stats.eval.membership_tests =
      eval_after.membership_tests - eval_before.membership_tests;
  result.stats.eval.cache_hits = eval_after.cache_hits - eval_before.cache_hits;
  result.stats.eval.cache_misses =
      eval_after.cache_misses - eval_before.cache_misses;
  return result;
}

}  // namespace remi
