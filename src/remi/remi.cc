#include "remi/remi.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <thread>

#include "util/logging.h"

namespace remi {

namespace {

/// Sibling ranges shorter than this are never split off as pool tasks:
/// the Expression/MatchSet copies a spill captures would outweigh the
/// parallelism.
constexpr size_t kSpillMinRange = 16;

/// Upper bound on the bytes spent pinning forced-bitmap twins of the
/// queue views (|G| x universe/8). Within budget, every DFS intersection
/// against a queue entry runs at bit-test/word-AND speed; past it (huge
/// KBs or huge queues) the kernel falls back to the adaptive vector
/// paths, which remain correct.
constexpr size_t kPinnedBitmapBudgetBytes = 64u << 20;

}  // namespace

int RemiOptions::EffectiveThreads() const {
  if (!clamp_threads_to_hardware || num_threads <= 1) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  // hardware_concurrency() may legitimately return 0 ("unknown"); then
  // the requested count stands.
  if (hw == 0) return num_threads;
  return std::min(num_threads, static_cast<int>(hw));
}

struct RemiMiner::SearchShared {
  const std::vector<RankedSubgraph>* queue = nullptr;
  /// Pinned queue views: entry i's match set, resolved once after
  /// RankedCommonSubgraphs (the owners live in MineCore for the whole
  /// search, including spilled tasks). The DFS indexes this array instead
  /// of hashing the EvalCache per node.
  const std::vector<const MatchSet*>* pinned = nullptr;
  /// Forced-bitmap twins of the pinned views (same elements, bitmap rep),
  /// built once per search when the universe fits the byte budget. A
  /// sparse DFS prefix then intersects by |prefix| bit-tests instead of a
  /// merge over both sides — the dominant node cost. Empty when disabled;
  /// entries alias `pinned` where the view is already a bitmap.
  const std::vector<const MatchSet*>* dense = nullptr;
  /// Acceptance threshold: |T| for strict REs, |T| + k with exceptions.
  size_t max_matches = 0;
  Deadline deadline;
  CancellationToken cancel;

  /// Non-null only for the pool-driving P-REMI search (batch items run
  /// sequentially inside their own pool task and leave these null).
  ThreadPool* pool = nullptr;
  TaskGroup* group = nullptr;
  int spill_depth = 0;

  /// Sequential REMI prunes nodes with cost >= best: among equal-cost REs
  /// the DFS-preorder-first one wins because its rivals are never visited.
  /// P-REMI visits nodes out of order, so it must keep exploring
  /// equal-cost nodes (strict > prune) and break ties explicitly — by the
  /// search path, i.e. the queue-index sequence of the node, whose
  /// lexicographic order IS preorder. Both searches therefore return the
  /// identical expression without changing sequential behaviour at all.
  bool strict_bound = false;

  std::atomic<bool> stop{false};
  std::atomic<bool> timed_out{false};
  std::atomic<bool> cancelled{false};

  // Authoritative best under mutex; relaxed mirror for cheap bound reads.
  // Nodes are identified by their queue-index path alone — the winning
  // Expression (and its match set, for exceptions) is rebuilt from
  // best_path during result assembly, so no DFS node pays a Conjoin copy
  // or a match-set snapshot on acceptance.
  std::mutex best_mu;
  std::vector<size_t> best_path;  // queue indices of the winning node
  double best_cost = CostModel::kInfiniteCost;
  std::atomic<double> best_cost_relaxed{CostModel::kInfiniteCost};

  std::atomic<uint64_t> nodes{0};
  std::atomic<uint64_t> depth_prunes{0};
  std::atomic<uint64_t> side_prunes{0};
  std::atomic<uint64_t> bound_prunes{0};
  std::atomic<uint64_t> redundant_prunes{0};
  // Kernel counters, flushed per worker/task from its SearchArena rather
  // than incremented per node.
  std::atomic<uint64_t> count_only_prunes{0};
  std::atomic<uint64_t> arena_frames_allocated{0};
  std::atomic<uint64_t> arena_frames_reused{0};

  bool HasSolution() const {
    return best_cost_relaxed.load(std::memory_order_relaxed) <
           CostModel::kInfiniteCost;
  }

  /// True when the best-bound cut applies to a node of this cost. The
  /// counter-visible semantics (>= vs >) follow strict_bound; callers
  /// still honour the best_bound_pruning ablation switch themselves.
  bool BoundHit(double cost) const {
    if (!HasSolution()) return false;
    const double best = best_cost_relaxed.load(std::memory_order_relaxed);
    return strict_bound ? cost > best : cost >= best;
  }

  /// Records a found RE; ties in cost break on the DFS-preorder order of
  /// the search paths so REMI and P-REMI return the identical expression.
  void UpdateBest(double cost, const std::vector<size_t>& path) {
    std::lock_guard<std::mutex> lock(best_mu);
    const bool better =
        cost < best_cost ||
        (cost == best_cost && !best_path.empty() &&
         std::lexicographical_compare(path.begin(), path.end(),
                                      best_path.begin(), best_path.end()));
    if (better) {
      best_path = path;
      best_cost = cost;
      best_cost_relaxed.store(cost, std::memory_order_relaxed);
    }
  }

  /// Polls the deadline and the cancellation token; both are checkpointed
  /// at every DFS node (inline and in spilled subtree tasks). Returns true
  /// when the run must stop.
  bool CheckDeadline() {
    if (deadline.Expired()) {
      timed_out.store(true, std::memory_order_relaxed);
      stop.store(true, std::memory_order_relaxed);
      return true;
    }
    if (cancel.CancellationRequested()) {
      cancelled.store(true, std::memory_order_relaxed);
      stop.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  bool Interrupted() const {
    return timed_out.load(std::memory_order_relaxed) ||
           cancelled.load(std::memory_order_relaxed);
  }
};

struct RemiMiner::RootTracker {
  size_t root = 0;
  /// Inline exploration counts as one task; each spilled sub-range adds
  /// one. Whoever decrements to zero owns the fully-explored event.
  std::atomic<size_t> outstanding{1};
};

/// Per-worker pool of reusable per-depth MatchSet frames. The DFS at
/// depth d intersects into Frame(d); siblings at the same depth overwrite
/// each other's results (their subtrees are fully explored in between),
/// so after the first descent to a given depth the steady state performs
/// zero heap allocations per node — IntersectInto only grows a frame's
/// buffers to their high-water mark and never shrinks them. Each P-REMI
/// pool task and each spilled sub-range task owns its own arena (frames
/// are strictly worker-local; the deque keeps frame addresses stable
/// across growth). Counters are accumulated locally and flushed to the
/// shared atomics once per task.
struct RemiMiner::SearchArena {
  std::deque<MatchSet> frames;
  uint64_t allocated = 0;
  uint64_t reused = 0;
  uint64_t count_only = 0;

  MatchSet* Frame(size_t depth) {
    if (depth < frames.size()) {
      ++reused;
      return &frames[depth];
    }
    while (frames.size() <= depth) frames.emplace_back();
    ++allocated;
    return &frames[depth];
  }

  void Flush(SearchShared* shared) {
    shared->arena_frames_allocated.fetch_add(allocated,
                                             std::memory_order_relaxed);
    shared->arena_frames_reused.fetch_add(reused, std::memory_order_relaxed);
    shared->count_only_prunes.fetch_add(count_only,
                                        std::memory_order_relaxed);
    allocated = reused = count_only = 0;
  }
};

RemiMiner::RemiMiner(const KnowledgeBase* kb, const RemiOptions& options)
    : RemiMiner(kb, options, nullptr, nullptr) {}

RemiMiner::RemiMiner(const KnowledgeBase* kb, const RemiOptions& options,
                     ThreadPool* shared_pool,
                     std::shared_ptr<EvalCache> shared_cache)
    : kb_(kb),
      options_(options),
      evaluator_(shared_cache != nullptr
                     ? std::make_unique<Evaluator>(kb, std::move(shared_cache))
                     : std::make_unique<Evaluator>(
                           kb, options.eval_cache_capacity,
                           options.eval_cache_shards)),
      cost_model_(std::make_unique<CostModel>(kb, options.cost)),
      enumerator_(
          std::make_unique<SubgraphEnumerator>(evaluator_.get(),
                                               options.enumerator)) {
  const int effective_threads = options_.EffectiveThreads();
  if (effective_threads > 1) {
    if (shared_pool != nullptr) {
      pool_ = shared_pool;
    } else {
      owned_pool_ =
          std::make_unique<ThreadPool>(static_cast<size_t>(effective_threads));
      pool_ = owned_pool_.get();
    }
  }
}

Result<std::vector<RankedSubgraph>> RemiMiner::RankedCommonSubgraphs(
    const std::vector<TermId>& targets, const MineControl& control) const {
  return RankedCommonSubgraphs(MatchSet(targets.begin(), targets.end()),
                               control);
}

namespace {

/// Maps an interrupt observed during queue costing to the status the
/// caller reports; OK when the control has not fired.
Status CostingInterruptStatus(const MineControl& control) {
  if (control.cancel.CancellationRequested()) {
    return Status::Cancelled("cancelled during queue costing");
  }
  if (control.deadline.Expired()) {
    return Status::DeadlineExceeded("deadline expired during queue costing");
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<RankedSubgraph>> RemiMiner::RankedCommonSubgraphs(
    const MatchSet& targets, const MineControl& control) const {
  if (targets.empty()) {
    return Status::InvalidArgument("target set is empty");
  }
  std::vector<SubgraphExpression> common =
      enumerator_->CommonSubgraphs(targets);
  REMI_RETURN_NOT_OK(CostingInterruptStatus(control));

  std::vector<RankedSubgraph> ranked(common.size());
  std::atomic<bool> interrupted{false};
  ThreadPool* pool = pool_;
  if (pool != nullptr && !pool->OnWorkerThread() && common.size() > 64) {
    // Paper §3.5.2: the construction and sorting of the queue is
    // parallelized (Ĉ evaluation dominates this phase). On a worker
    // thread (a MineBatch item) the chunks are computed inline instead:
    // batch items parallelize across sets, not within one.
    TaskGroup group;
    const size_t chunk = (common.size() + pool->num_threads() - 1) /
                         pool->num_threads();
    for (size_t begin = 0; begin < common.size(); begin += chunk) {
      const size_t end = std::min(begin + chunk, common.size());
      pool->Submit(&group, [this, &common, &ranked, begin, end, &control,
                            &interrupted] {
        for (size_t i = begin; i < end; ++i) {
          if ((i & 63u) == 0 && !CostingInterruptStatus(control).ok()) {
            interrupted.store(true, std::memory_order_relaxed);
            return;
          }
          ranked[i] = RankedSubgraph{common[i],
                                     cost_model_->SubgraphCost(common[i])};
        }
      });
    }
    group.Wait();
  } else {
    for (size_t i = 0; i < common.size(); ++i) {
      if ((i & 63u) == 0 && !CostingInterruptStatus(control).ok()) {
        interrupted.store(true, std::memory_order_relaxed);
        break;
      }
      ranked[i] =
          RankedSubgraph{common[i], cost_model_->SubgraphCost(common[i])};
    }
  }
  if (interrupted.load(std::memory_order_relaxed)) {
    return CostingInterruptStatus(control);
  }

  // Drop unusable entries (no finite code length) and sort ascending by
  // (Ĉ, expression order) for a deterministic queue.
  ranked.erase(std::remove_if(ranked.begin(), ranked.end(),
                              [](const RankedSubgraph& r) {
                                return r.cost == CostModel::kInfiniteCost;
                              }),
               ranked.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedSubgraph& a, const RankedSubgraph& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              return a.expression < b.expression;
            });
  return ranked;
}

void RemiMiner::FinishRootTask(const std::shared_ptr<RootTracker>& tracker,
                               SearchShared* shared) const {
  if (tracker->outstanding.fetch_sub(1, std::memory_order_acq_rel) != 1) {
    return;
  }
  // The root's subtree is now fully explored. Only the *cheapest* root
  // supports the no-solution conclusion (Alg. 1 line 8): conjoining the
  // cheapest common subgraph to any RE yields an RE inside that root's
  // subtree, so an exhausted first subtree means no RE exists anywhere.
  // A later root's exhaustion proves only that no RE avoids every earlier
  // subgraph — stopping on it could abort a sibling about to succeed.
  if (tracker->root == 0 &&
      !shared->timed_out.load(std::memory_order_relaxed) &&
      !shared->stop.load(std::memory_order_relaxed) &&
      !shared->HasSolution()) {
    shared->stop.store(true, std::memory_order_relaxed);
  }
}

void RemiMiner::Dfs(const MatchSet& prefix_matches, double prefix_cost,
                    size_t next_index, size_t level_end, SearchShared* shared,
                    int depth, const std::shared_ptr<RootTracker>& tracker,
                    std::vector<size_t>* path, SearchArena* arena) const {
  const auto& queue = *shared->queue;
  const auto& pinned = *shared->pinned;
  const std::vector<const MatchSet*>* dense = shared->dense;
  size_t end = level_end;

  // Lazy binary splitting (P-REMI only): while some worker is idle, hand
  // the upper half of this level's unexplored sibling range to the pool.
  // The spilled task re-enters Dfs with the same prefix, so it covers
  // exactly the level-children [mid, end) and their subtrees; children of
  // the inline half still recurse over the full remaining queue. The
  // prefix match set is snapshotted into the closure because the
  // spiller's arena frame it may live in is overwritten as the spiller
  // moves on; the spilled task then runs on its own arena.
  if (shared->pool != nullptr && tracker != nullptr &&
      depth <= shared->spill_depth) {
    while (end - next_index >= kSpillMinRange &&
           shared->pool->HasIdleWorker() &&
           !shared->stop.load(std::memory_order_relaxed)) {
      const size_t mid = next_index + (end - next_index) / 2;
      tracker->outstanding.fetch_add(1, std::memory_order_relaxed);
      std::vector<size_t> spilled_path = *path;
      shared->pool->Submit(
          shared->group,
          [this, spilled_prefix = prefix_matches, prefix_cost, mid, end,
           shared, depth, tracker, spilled_path] {
            std::vector<size_t> task_path = spilled_path;
            SearchArena task_arena;
            Dfs(spilled_prefix, prefix_cost, mid, end, shared, depth, tracker,
                &task_path, &task_arena);
            task_arena.Flush(shared);
            FinishRootTask(tracker, shared);
          });
      end = mid;
    }
  }

  for (size_t j = next_index; j < end; ++j) {
    if (shared->stop.load(std::memory_order_relaxed)) return;
    if (shared->CheckDeadline()) return;

    const double cost = prefix_cost + queue[j].cost;
    if (shared->BoundHit(cost)) {
      shared->bound_prunes.fetch_add(1, std::memory_order_relaxed);
      if (options_.best_bound_pruning) {
        // The queue is cost-sorted: every later sibling (and its subtree)
        // costs at least this much (Alg. 3 line 6).
        return;
      }
    }

    shared->nodes.fetch_add(1, std::memory_order_relaxed);
    // Node decision, representation-adaptive so neither regime pays for
    // the other. `rhs` is the queue entry in its fastest pinned form: the
    // forced-bitmap twin when available (bit-test intersections), else
    // the original view — except when the original is a vector so much
    // smaller than the prefix that galloping it through the prefix beats
    // |prefix| bit-tests.
    //   * dense prefix (bitmap): count-first. IntersectCount capped at
    //     max_matches (tiny: |T|+k) decides acceptance by word-AND
    //     popcount with early exit, and the redundant test is a word-wise
    //     SubsetOf — both probe 64 elements per op, so the dominant
    //     pruned nodes never materialize their (large) intersections.
    //   * sparse prefix (vector): fused. These prefixes average a few
    //     dozen elements, where a counting probe costs as much as the
    //     materialization — so the node intersects straight into this
    //     worker's arena frame (|prefix| bit-tests against the bitmap
    //     twin) and both tests read frame->size().
    // Either way the steady state allocates nothing: frames only grow to
    // their per-depth high-water capacity.
    // Budget fallback (RemiOptions::max_pinned_bytes): an entry left
    // unpinned resolves through the evaluator per node — the cache lookup
    // the pinned fast path avoids — with its owner held for this node
    // (including the recursion below).
    std::shared_ptr<const MatchSet> fallback_owner;
    const MatchSet* entry = pinned[j];
    if (entry == nullptr) {
      fallback_owner = evaluator_->Match(queue[j].expression);
      entry = fallback_owner.get();
    }
    const MatchSet* rhs =
        (dense != nullptr && (*dense)[j] != nullptr) ? (*dense)[j] : entry;
    if (!entry->is_bitmap() &&
        entry->size() * 16 < prefix_matches.size()) {
      rhs = entry;
    }
    size_t count;
    bool redundant;
    MatchSet* frame = nullptr;
    if (prefix_matches.is_bitmap() && rhs->is_bitmap()) {
      count = prefix_matches.IntersectCount(*rhs, shared->max_matches);
      // A capped count > max_matches is not exact — but then the node is
      // not accepting, and redundancy is exactly prefix ⊆ matches(ρj).
      redundant = count <= shared->max_matches
                      ? count == prefix_matches.size()
                      : prefix_matches.SubsetOf(*rhs);
    } else {
      frame = arena->Frame(static_cast<size_t>(depth));
      EntitySet::IntersectInto(prefix_matches, *rhs, frame);
      count = frame->size();
      redundant = count == prefix_matches.size();
    }
    if (redundant) {
      // ρj did not shrink the match set, so for every extension X,
      // prefix ∧ ρj ∧ X matches exactly what prefix ∧ X matches but costs
      // strictly more: the whole subtree is dominated. This keeps the
      // no-solution and near-fixpoint regions of the search polynomial
      // instead of exponential (see DESIGN.md §4). (The redundant test
      // deliberately precedes acceptance, as in the original kernel.)
      shared->redundant_prunes.fetch_add(1, std::memory_order_relaxed);
      if (frame == nullptr) ++arena->count_only;
      continue;
    }
    // G holds only common subgraphs, so T ⊆ matches is invariant and the
    // accepting test reduces to a cardinality check (== |T| for strict
    // REs, <= |T| + k with exceptions).
    const bool is_re = count <= shared->max_matches;
    // Materializes the node's match set on first use (the count-first
    // path defers it until the DFS actually descends).
    const auto materialized = [&]() -> const MatchSet& {
      if (frame == nullptr) {
        frame = arena->Frame(static_cast<size_t>(depth));
        EntitySet::IntersectInto(prefix_matches, *rhs, frame);
      }
      return *frame;
    };

    path->push_back(j);
    if (is_re) {
      shared->UpdateBest(cost, *path);
      if (options_.depth_pruning) {
        shared->depth_prunes.fetch_add(1, std::memory_order_relaxed);
        if (frame == nullptr) ++arena->count_only;
      } else {
        Dfs(materialized(), cost, j + 1, queue.size(), shared, depth + 1,
            tracker, path, arena);
      }
      if (options_.side_pruning) {
        shared->side_prunes.fetch_add(1, std::memory_order_relaxed);
        path->pop_back();
        return;
      }
    } else {
      Dfs(materialized(), cost, j + 1, queue.size(), shared, depth + 1,
          tracker, path, arena);
    }
    path->pop_back();
  }
}

bool RemiMiner::ExploreRoot(size_t root, SearchShared* shared,
                            const std::shared_ptr<RootTracker>& tracker,
                            SearchArena* arena) const {
  if (shared->stop.load(std::memory_order_relaxed)) return false;
  const auto& queue = *shared->queue;
  const RankedSubgraph& rho = queue[root];

  if (shared->BoundHit(rho.cost)) {
    shared->bound_prunes.fetch_add(1, std::memory_order_relaxed);
    return true;  // nothing cheaper can exist below this root
  }

  // The root's match set is a pinned view (no cache lookup, no copy)
  // unless max_pinned_bytes left this entry unpinned.
  std::shared_ptr<const MatchSet> root_owner;
  const MatchSet* matches = (*shared->pinned)[root];
  if (matches == nullptr) {
    root_owner = evaluator_->Match(rho.expression);
    matches = root_owner.get();
  }
  shared->nodes.fetch_add(1, std::memory_order_relaxed);
  std::vector<size_t> path{root};
  if (matches->size() <= shared->max_matches) {
    shared->UpdateBest(rho.cost, path);
    shared->depth_prunes.fetch_add(1, std::memory_order_relaxed);
    ++arena->count_only;
  } else {
    Dfs(*matches, rho.cost, root + 1, queue.size(), shared, 1, tracker, &path,
        arena);
  }
  return !shared->Interrupted();
}

Result<RemiResult> RemiMiner::MineRe(const std::vector<TermId>& targets,
                                     const MineControl& control) const {
  return MineReWithExceptions(targets, 0, control);
}

Result<RemiResult> RemiMiner::MineReWithExceptions(
    const std::vector<TermId>& targets, size_t max_exceptions,
    const MineControl& control) const {
  if (targets.empty()) {
    return Status::InvalidArgument("target set is empty");
  }
  // The EntitySet range constructor sorts and deduplicates.
  const MatchSet sorted_targets(targets.begin(), targets.end());
  return MineCore(sorted_targets, max_exceptions, pool_, control);
}

Result<std::vector<RemiResult>> RemiMiner::MineBatch(
    const std::vector<std::vector<TermId>>& target_sets,
    size_t max_exceptions, const MineControl& control) const {
  for (size_t i = 0; i < target_sets.size(); ++i) {
    if (target_sets[i].empty()) {
      return Status::InvalidArgument("target set #" + std::to_string(i) +
                                     " is empty");
    }
  }
  std::vector<RemiResult> results(target_sets.size());
  ThreadPool* pool = pool_;
  if (pool != nullptr && !pool->OnWorkerThread() && target_sets.size() > 1) {
    // One task per set; each runs the sequential algorithm against the
    // shared warm cache while the pool parallelizes across sets.
    TaskGroup group;
    for (size_t i = 0; i < target_sets.size(); ++i) {
      pool->Submit(&group, [this, &results, &target_sets, i, max_exceptions,
                            control] {
        const MatchSet sorted(target_sets[i].begin(), target_sets[i].end());
        auto mined = MineCore(sorted, max_exceptions, nullptr, control);
        // MineCore cannot fail on a non-empty target set; a default
        // (not-found) result stands in if that invariant ever breaks.
        if (mined.ok()) results[i] = std::move(*mined);
      });
    }
    group.Wait();
  } else {
    for (size_t i = 0; i < target_sets.size(); ++i) {
      const MatchSet sorted(target_sets[i].begin(), target_sets[i].end());
      auto mined = MineCore(
          sorted, max_exceptions,
          (pool != nullptr && !pool->OnWorkerThread()) ? pool : nullptr,
          control);
      if (!mined.ok()) return mined.status();
      results[i] = std::move(*mined);
    }
  }
  return results;
}

Result<RemiResult> RemiMiner::MineCore(const MatchSet& sorted_targets,
                                       size_t max_exceptions,
                                       ThreadPool* pool,
                                       const MineControl& control) const {
  RemiResult result;
  const EvaluatorStats eval_before = evaluator_->stats();

  Timer build_timer;
  auto ranked = RankedCommonSubgraphs(sorted_targets, control);
  if (!ranked.ok()) {
    // Interrupted during queue costing: an in-band partial result, same
    // contract as an interrupt during the search.
    if (ranked.status().IsDeadlineExceeded() ||
        ranked.status().IsCancelled()) {
      result.stats.queue_build_seconds = build_timer.ElapsedSeconds();
      result.timed_out = ranked.status().IsDeadlineExceeded();
      result.cancelled = ranked.status().IsCancelled();
      const EvaluatorStats eval_now = evaluator_->stats();
      result.stats.eval.subgraph_evaluations =
          eval_now.subgraph_evaluations - eval_before.subgraph_evaluations;
      result.stats.eval.membership_tests =
          eval_now.membership_tests - eval_before.membership_tests;
      result.stats.eval.cache_hits =
          eval_now.cache_hits - eval_before.cache_hits;
      result.stats.eval.cache_misses =
          eval_now.cache_misses - eval_before.cache_misses;
      return result;
    }
    return ranked.status();
  }
  result.stats.num_common_subgraphs = ranked->size();
  result.stats.queue_build_seconds = build_timer.ElapsedSeconds();

  SearchShared shared;
  shared.queue = &*ranked;
  shared.max_matches = sorted_targets.size() + max_exceptions;
  shared.cancel = control.cancel;
  Deadline deadline = control.deadline;
  if (options_.timeout_seconds > 0) {
    const double remaining =
        options_.timeout_seconds - result.stats.queue_build_seconds;
    deadline = Deadline::Earliest(
        deadline,
        Deadline::AfterSeconds(remaining > 0 ? remaining : 0));
  }
  shared.deadline = deadline;

  Timer search_timer;
  const size_t n = ranked->size();

  // A request whose deadline expired (or that was cancelled) during the
  // queue build skips the search entirely and reports its partial stats.
  bool no_solution_proven = false;
  bool interrupted_before_search = shared.CheckDeadline();

  // Pin the queue views: resolve every entry's match set once, up front,
  // so the DFS indexes a flat array instead of hashing the EvalCache per
  // node. The shared_ptr owners keep the sets alive for the whole search
  // (including spilled tasks) even if the cache evicts them. The cache
  // still serves this resolution pass — warm entries from earlier
  // requests make pinning cheap — it is only the per-node lookup that
  // the kernel eliminates.
  std::vector<std::shared_ptr<const MatchSet>> pinned_owners(n);
  std::vector<const MatchSet*> pinned(n);
  if (!interrupted_before_search && n > 0) {
    const auto pin_range = [this, &pinned_owners, &pinned, &shared](
                               size_t begin, size_t end) {
      const auto& queue = *shared.queue;
      for (size_t i = begin; i < end; ++i) {
        if ((i & 63u) == 0 && shared.CheckDeadline()) return;
        pinned_owners[i] = evaluator_->Match(queue[i].expression);
        pinned[i] = pinned_owners[i].get();
      }
    };
    if (pool != nullptr && !pool->OnWorkerThread() && n > 64) {
      TaskGroup pin_group;
      const size_t chunk =
          (n + pool->num_threads() - 1) / pool->num_threads();
      for (size_t begin = 0; begin < n; begin += chunk) {
        const size_t end = std::min(begin + chunk, n);
        pool->Submit(&pin_group,
                     [&pin_range, begin, end] { pin_range(begin, end); });
      }
      pin_group.Wait();
    } else {
      pin_range(0, n);
    }
    interrupted_before_search = shared.Interrupted();
    if (!interrupted_before_search) {
      // RemiOptions::max_pinned_bytes: keep the longest queue-order prefix
      // that fits the budget. The prefix rule is deliberate — it is
      // deterministic and the head of the cost-sorted queue is exactly
      // what the DFS touches most. Entries past the cut release their
      // owners and fall back to per-node evaluator lookups in the DFS.
      const size_t budget = options_.max_pinned_bytes;
      size_t kept = n;
      size_t kept_bytes = 0;
      for (size_t i = 0; i < n; ++i) {
        const size_t entry_bytes = pinned[i]->MemoryBytes();
        if (budget != 0 && kept_bytes + entry_bytes > budget) {
          kept = i;
          break;
        }
        kept_bytes += entry_bytes;
      }
      for (size_t i = kept; i < n; ++i) {
        pinned_owners[i].reset();
        pinned[i] = nullptr;
      }
      result.stats.pinned_queue_entries = kept;
      result.stats.pinned_queue_bytes = kept_bytes;
      result.stats.unpinned_queue_entries = n - kept;
    }
  }
  shared.pinned = &pinned;

  // Forced-bitmap twins of the pinned views: within the byte budget,
  // every sparse queue entry also gets a bitmap copy so DFS prefixes
  // intersect by bit-tests instead of merges. Entries that are already
  // bitmaps alias the pinned view directly.
  std::vector<MatchSet> dense_storage;
  std::vector<const MatchSet*> dense(n);
  const size_t universe = kb_->dict().size();
  const size_t bitmap_bytes = ((universe + 63) / 64) * sizeof(uint64_t);
  if (!interrupted_before_search && n > 0 &&
      bitmap_bytes * n <= kPinnedBitmapBudgetBytes) {
    dense_storage.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (pinned[i] == nullptr) {
        // Budget-unpinned entry: resolved per node, no resident twin.
        dense[i] = nullptr;
      } else if (pinned[i]->is_bitmap()) {
        dense[i] = pinned[i];
      } else {
        dense_storage.push_back(pinned[i]->ForcedBitmap(universe));
        dense[i] = &dense_storage.back();
        result.stats.dense_twin_bytes += dense_storage.back().MemoryBytes();
      }
    }
    shared.dense = &dense;
  }

  // Resolves queue entry `idx` for the assembly-side passes below: the
  // pinned view when present, else a fresh evaluator lookup whose owner
  // the caller keeps alive via `owner`.
  const auto resolve = [&](size_t idx, std::shared_ptr<const MatchSet>* owner)
      -> const MatchSet* {
    if (pinned[idx] != nullptr) return pinned[idx];
    *owner = evaluator_->Match((*ranked)[idx].expression);
    return owner->get();
  };

  // Cache traffic from here on is per-node traffic: the pinning pass
  // above was the search's last legitimate EvalCache access. (With a
  // max_pinned_bytes budget in force, unpinned entries legitimately
  // contribute per-node lookups here; the counter then measures exactly
  // the traffic the budget trades for memory.)
  const uint64_t cache_lookups_before_search =
      evaluator_->stats().cache_lookups();

  // Proactive Alg. 1 line 8: the conjunction of *all* common subgraph
  // expressions is the most specific expression in the search space. If
  // even that matches more than |T| + k entities, no accepting expression
  // exists and the (worst-case exponential) exhaustive exploration of the
  // first root can be skipped entirely. The pinned views make this a pure
  // intersection cascade over two ping-pong buffers.
  if (n > 0 && !interrupted_before_search) {
    std::shared_ptr<const MatchSet> first_owner;
    MatchSet everything = *resolve(0, &first_owner);
    MatchSet scratch;
    for (size_t i = 1;
         i < n && everything.size() > shared.max_matches &&
         !shared.CheckDeadline();
         ++i) {
      std::shared_ptr<const MatchSet> owner;
      EntitySet::IntersectInto(everything, *resolve(i, &owner), &scratch);
      std::swap(everything, scratch);
    }
    no_solution_proven = everything.size() > shared.max_matches &&
                         !shared.Interrupted();
  }

  if (interrupted_before_search || no_solution_proven) {
    // Fall through to the common result assembly with an empty search.
  } else if (pool == nullptr) {
    // Alg. 1: dequeue roots in ascending Ĉ order.
    SearchArena arena;
    for (size_t i = 0; i < n; ++i) {
      if (shared.stop.load(std::memory_order_relaxed)) break;
      if (shared.HasSolution() &&
          (*ranked)[i].cost >=
              shared.best_cost_relaxed.load(std::memory_order_relaxed)) {
        break;  // all remaining roots are at least as expensive
      }
      const bool fully_explored = ExploreRoot(i, &shared, nullptr, &arena);
      if (fully_explored && !shared.HasSolution()) {
        // Alg. 1 line 8: the exhausted subtree contained the most specific
        // conjunction reachable from here; no RE exists.
        break;
      }
    }
    arena.Flush(&shared);
  } else {
    // P-REMI (§3.4): workers concurrently dequeue roots in ascending-Ĉ
    // order, and skewed subtrees additionally spill sibling sub-ranges to
    // idle workers (see Dfs). All tasks of this run are tracked by one
    // TaskGroup so concurrent runs can share the pool. Each worker task
    // owns one arena across all the roots it dequeues.
    shared.pool = pool;
    shared.spill_depth = options_.spill_depth;
    shared.strict_bound = true;
    TaskGroup group;
    shared.group = &group;
    std::atomic<size_t> next_root{0};
    const size_t num_workers = pool->num_threads();
    for (size_t w = 0; w < num_workers && w < n; ++w) {
      pool->Submit(&group, [this, &shared, &next_root, n] {
        SearchArena arena;
        for (;;) {
          const size_t i =
              next_root.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) break;
          if (shared.stop.load(std::memory_order_relaxed)) break;
          if (shared.BoundHit((*shared.queue)[i].cost)) {
            break;  // ascending costs: no later root can win a tie-break
          }
          auto tracker = std::make_shared<RootTracker>();
          tracker->root = i;
          ExploreRoot(i, &shared, tracker, &arena);
          // The inline share of the root is done; spilled sub-ranges (if
          // any) finish on their own and the last one signals
          // no-solution for the cheapest root.
          FinishRootTask(tracker, &shared);
        }
        arena.Flush(&shared);
      });
    }
    group.Wait();
  }
  result.stats.search_seconds = search_timer.ElapsedSeconds();
  result.stats.search_cache_lookups =
      evaluator_->stats().cache_lookups() - cache_lookups_before_search;

  // Deferred materialization: the search recorded only the winning node's
  // queue-index path; rebuild the Expression (same Conjoin sequence the
  // old kernel performed at every node) and, for the exceptions report,
  // its match set from the pinned views.
  std::vector<size_t> best_path;
  {
    std::lock_guard<std::mutex> lock(shared.best_mu);
    result.cost = shared.best_cost;
    best_path = shared.best_path;
  }
  result.found = result.cost < CostModel::kInfiniteCost;
  if (result.found) {
    for (const size_t idx : best_path) {
      result.expression = result.expression.Conjoin((*ranked)[idx].expression);
    }
    std::shared_ptr<const MatchSet> first_owner;
    MatchSet matches = *resolve(best_path[0], &first_owner);
    MatchSet scratch;
    for (size_t i = 1; i < best_path.size(); ++i) {
      std::shared_ptr<const MatchSet> owner;
      EntitySet::IntersectInto(matches, *resolve(best_path[i], &owner),
                               &scratch);
      std::swap(matches, scratch);
    }
    // Exceptions: the matched non-targets of the winning expression.
    for (const TermId m : matches) {
      if (!sorted_targets.Contains(m)) result.exceptions.push_back(m);
    }
  }
  result.timed_out = shared.timed_out.load(std::memory_order_relaxed);
  result.cancelled = shared.cancelled.load(std::memory_order_relaxed);
  result.stats.nodes_visited = shared.nodes.load(std::memory_order_relaxed);
  result.stats.depth_prunes =
      shared.depth_prunes.load(std::memory_order_relaxed);
  result.stats.side_prunes =
      shared.side_prunes.load(std::memory_order_relaxed);
  result.stats.bound_prunes =
      shared.bound_prunes.load(std::memory_order_relaxed);
  result.stats.redundant_prunes =
      shared.redundant_prunes.load(std::memory_order_relaxed);
  result.stats.count_only_prunes =
      shared.count_only_prunes.load(std::memory_order_relaxed);
  result.stats.arena_frames_allocated =
      shared.arena_frames_allocated.load(std::memory_order_relaxed);
  result.stats.arena_frames_reused =
      shared.arena_frames_reused.load(std::memory_order_relaxed);

  const EvaluatorStats eval_after = evaluator_->stats();
  result.stats.eval.subgraph_evaluations =
      eval_after.subgraph_evaluations - eval_before.subgraph_evaluations;
  result.stats.eval.membership_tests =
      eval_after.membership_tests - eval_before.membership_tests;
  result.stats.eval.cache_hits = eval_after.cache_hits - eval_before.cache_hits;
  result.stats.eval.cache_misses =
      eval_after.cache_misses - eval_before.cache_misses;
  return result;
}

}  // namespace remi
