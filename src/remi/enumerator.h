// Subgraph-expression enumeration (paper §3.3 routine subgraphs-expressions
// and the pruning heuristics of §3.5.2).
//
// For a target entity t, a breadth-first pass derives every Table 1 shape
// matched by t: atoms p0(t, I0) seed paths p0(x,y) ∧ p1(y,I1), paths seed
// path+star, and object groups of t's facts seed the closed shapes. The
// paper's heuristics are applied here:
//   * atoms p(x, B) with a blank-node object are skipped, but paths that
//     "hide" the blank node are always derived;
//   * atoms whose object is among the top-5% most prominent entities are
//     not expanded into multi-atom shapes (their constant is already
//     cheap to encode);
//   * the label predicate is never used (an entity's name is not a
//     description), and rdf:type / inverse predicates can be toggled for
//     experiments that need the restricted language (e.g. Table 3).
//
// Alg. 1 line 1 (G := ⋂ subgraph-expressions(t)) is implemented by
// enumerating from the target with the smallest neighbourhood and keeping
// the expressions every other target satisfies.

#pragma once

#include <vector>

#include "query/evaluator.h"

namespace remi {

/// Language-bias and pruning configuration for enumeration.
struct EnumeratorOptions {
  /// REMI's extended language (all Table 1 shapes). When false only atoms
  /// are produced: the state-of-the-art ("standard") language bias.
  bool extended_language = true;

  /// Skip atoms with blank-node objects (§3.5.2).
  bool skip_blank_atoms = true;

  /// Do not derive multi-atom expressions from atoms whose object ranks in
  /// the top `prominent_object_fraction` of entities (§3.5.2, 5% rule).
  bool prune_prominent_expansion = true;
  double prominent_object_fraction = 0.05;

  /// Allow rdf:type atoms (Table 3 disables them).
  bool include_type_atoms = true;

  /// Allow materialized inverse predicates (Table 3 disables them).
  bool include_inverse_predicates = true;

  /// Hard cap on produced expressions per entity; 0 = unlimited.
  size_t max_subgraphs = 0;
};

/// Per-shape enumeration counts (for the §3.2 language-bias experiments).
struct ShapeCounts {
  uint64_t atoms = 0;
  uint64_t paths = 0;
  uint64_t path_stars = 0;
  uint64_t twin_pairs = 0;
  uint64_t twin_triples = 0;
  /// Two-extra-variable chains p0(x,y) ∧ p1(y,z) ∧ p2(z,I); not part of
  /// REMI's bias, counted only for the +270% measurement.
  uint64_t chains_two_vars = 0;

  uint64_t TotalOneVar() const {
    return atoms + paths + path_stars + twin_pairs + twin_triples;
  }
  uint64_t TotalTwoAtomsOneVar() const { return atoms + paths + twin_pairs; }
};

/// \brief Enumerates the subgraph expressions of entities.
class SubgraphEnumerator {
 public:
  /// \param evaluator query layer (not owned); also provides the KB.
  SubgraphEnumerator(Evaluator* evaluator,
                     const EnumeratorOptions& options = {});

  /// All subgraph expressions of `t` in the configured language bias,
  /// deduplicated, in deterministic order.
  std::vector<SubgraphExpression> EnumerateFor(TermId t) const;

  /// Subgraph expressions common to all `targets` (paper Alg. 1 line 1),
  /// excluding expressions whose constant is itself a target (an entity
  /// must not be described in terms of itself).
  std::vector<SubgraphExpression> CommonSubgraphs(
      const EntitySet& targets) const;

  /// Convenience overload; duplicates in `targets` are ignored.
  std::vector<SubgraphExpression> CommonSubgraphs(
      const std::vector<TermId>& targets) const;

  /// Counts expressions per shape for `t` under a widened bias
  /// (up to `max_extra_vars` existential variables); used to reproduce the
  /// §3.2 search-space-growth numbers.
  ShapeCounts CountSubgraphs(TermId t, int max_extra_vars) const;

  const EnumeratorOptions& options() const { return options_; }

 private:
  /// True if predicate `p` may appear in expressions.
  bool PredicateAllowed(TermId p) const;
  /// True if the object of an atom may seed multi-atom shapes.
  bool ExpandableObject(TermId o) const;

  Evaluator* evaluator_;
  const KnowledgeBase* kb_;
  EnumeratorOptions options_;
};

}  // namespace remi
