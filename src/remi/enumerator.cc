#include "remi/enumerator.h"

#include <algorithm>
#include <unordered_set>

namespace remi {

namespace {

using ExpressionSet =
    std::unordered_set<SubgraphExpression, SubgraphExpressionHash>;

}  // namespace

SubgraphEnumerator::SubgraphEnumerator(Evaluator* evaluator,
                                       const EnumeratorOptions& options)
    : evaluator_(evaluator), kb_(&evaluator->kb()), options_(options) {}

bool SubgraphEnumerator::PredicateAllowed(TermId p) const {
  if (p == kb_->label_predicate()) return false;
  if (!options_.include_type_atoms && p == kb_->type_predicate()) {
    return false;
  }
  if (!options_.include_inverse_predicates && kb_->IsInversePredicate(p)) {
    return false;
  }
  return true;
}

bool SubgraphEnumerator::ExpandableObject(TermId o) const {
  const TermKind kind = kb_->dict().kind(o);
  if (kind == TermKind::kLiteral) return false;  // no joins through literals
  if (kind == TermKind::kBlank) return true;     // always hide blank nodes
  if (options_.prune_prominent_expansion &&
      kb_->IsTopProminentEntity(o, options_.prominent_object_fraction)) {
    return false;  // §3.5.2: a prominent constant beats extra atoms
  }
  return true;
}

std::vector<SubgraphExpression> SubgraphEnumerator::EnumerateFor(
    TermId t) const {
  ExpressionSet out;
  const TripleStore& store = kb_->store();
  const auto facts = store.BySubject(t);
  const bool capped = options_.max_subgraphs > 0;
  const auto full = [&] {
    return capped && out.size() >= options_.max_subgraphs;
  };

  // Atoms p0(x, I0) and, from expandable objects, paths and path+stars.
  for (const Triple& fact : facts) {
    if (full()) break;
    if (!PredicateAllowed(fact.p)) continue;
    const TermKind object_kind = kb_->dict().kind(fact.o);
    const bool blank_object = object_kind == TermKind::kBlank;
    if (!blank_object || !options_.skip_blank_atoms) {
      out.insert(SubgraphExpression::Atom(fact.p, fact.o));
    }
    if (!options_.extended_language) continue;
    if (!ExpandableObject(fact.o)) continue;

    // Collect the admissible second-hop legs (p1, I1) of this y = fact.o.
    std::vector<std::pair<TermId, TermId>> legs;
    for (const Triple& hop : store.BySubject(fact.o)) {
      if (!PredicateAllowed(hop.p)) continue;
      if (kb_->dict().kind(hop.o) == TermKind::kBlank) continue;
      if (hop.o == t) continue;  // would describe t via itself
      legs.emplace_back(hop.p, hop.o);
    }
    std::sort(legs.begin(), legs.end());
    legs.erase(std::unique(legs.begin(), legs.end()), legs.end());

    for (size_t i = 0; i < legs.size() && !full(); ++i) {
      out.insert(
          SubgraphExpression::Path(fact.p, legs[i].first, legs[i].second));
      for (size_t j = i + 1; j < legs.size() && !full(); ++j) {
        out.insert(SubgraphExpression::PathStar(fact.p, legs[i].first,
                                                legs[i].second, legs[j].first,
                                                legs[j].second));
      }
    }
  }

  // Closed shapes: predicates grouped by shared object.
  if (options_.extended_language && !full()) {
    // Group t's facts by object; objects are *not* constants here, so
    // blank and prominent objects participate (the closed shapes have no
    // constant to pay for).
    std::vector<std::pair<TermId, TermId>> by_object;  // (object, predicate)
    for (const Triple& fact : facts) {
      if (!PredicateAllowed(fact.p)) continue;
      if (fact.p == kb_->type_predicate()) continue;  // type is not a link
      if (kb_->dict().kind(fact.o) == TermKind::kLiteral) continue;
      by_object.emplace_back(fact.o, fact.p);
    }
    std::sort(by_object.begin(), by_object.end());
    by_object.erase(std::unique(by_object.begin(), by_object.end()),
                    by_object.end());
    size_t i = 0;
    while (i < by_object.size() && !full()) {
      size_t j = i;
      while (j < by_object.size() && by_object[j].first == by_object[i].first) {
        ++j;
      }
      for (size_t a = i; a < j && !full(); ++a) {
        for (size_t b = a + 1; b < j && !full(); ++b) {
          out.insert(SubgraphExpression::TwinPair(by_object[a].second,
                                                  by_object[b].second));
          for (size_t c = b + 1; c < j && !full(); ++c) {
            out.insert(SubgraphExpression::TwinTriple(by_object[a].second,
                                                      by_object[b].second,
                                                      by_object[c].second));
          }
        }
      }
      i = j;
    }
  }

  std::vector<SubgraphExpression> result(out.begin(), out.end());
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<SubgraphExpression> SubgraphEnumerator::CommonSubgraphs(
    const EntitySet& targets) const {
  if (targets.empty()) return {};

  // Enumerate from the target with the smallest neighbourhood; the result
  // is the same as intersecting per-target enumerations because every
  // expression matched by a target appears in its enumeration.
  TermId seed = kNullTerm;
  size_t seed_degree = SIZE_MAX;
  for (const TermId t : targets) {
    const size_t deg = kb_->store().SubjectDegree(t);
    if (deg < seed_degree) {
      seed = t;
      seed_degree = deg;
    }
  }

  std::vector<SubgraphExpression> common;
  for (const SubgraphExpression& rho : EnumerateFor(seed)) {
    // An entity must not be described via a constant inside the set.
    if (rho.c1 != kNullTerm && targets.Contains(rho.c1)) continue;
    if (rho.c2 != kNullTerm && targets.Contains(rho.c2)) continue;
    bool shared = true;
    for (const TermId t : targets) {
      if (t == seed) continue;
      if (!evaluator_->Matches(t, rho)) {
        shared = false;
        break;
      }
    }
    if (shared) common.push_back(rho);
  }
  return common;
}

std::vector<SubgraphExpression> SubgraphEnumerator::CommonSubgraphs(
    const std::vector<TermId>& targets) const {
  return CommonSubgraphs(EntitySet(targets.begin(), targets.end()));
}

ShapeCounts SubgraphEnumerator::CountSubgraphs(TermId t,
                                               int max_extra_vars) const {
  ShapeCounts counts;
  for (const SubgraphExpression& rho : EnumerateFor(t)) {
    switch (rho.shape) {
      case SubgraphShape::kAtom:
        ++counts.atoms;
        break;
      case SubgraphShape::kPath:
        ++counts.paths;
        break;
      case SubgraphShape::kPathStar:
        ++counts.path_stars;
        break;
      case SubgraphShape::kTwinPair:
        ++counts.twin_pairs;
        break;
      case SubgraphShape::kTwinTriple:
        ++counts.twin_triples;
        break;
    }
  }
  if (max_extra_vars < 2) return counts;

  // Count the 3-atom chains p0(x,y) ∧ p1(y,z) ∧ p2(z, I) that a second
  // existential variable would admit (deduplicated on (p0,p1,p2,I)).
  const TripleStore& store = kb_->store();
  struct ChainKey {
    TermId p0, p1, p2, c;
    bool operator==(const ChainKey& o) const {
      return p0 == o.p0 && p1 == o.p1 && p2 == o.p2 && c == o.c;
    }
  };
  struct ChainHash {
    size_t operator()(const ChainKey& k) const {
      uint64_t h = 0xcbf29ce484222325ULL;
      for (uint64_t v : {static_cast<uint64_t>(k.p0),
                         static_cast<uint64_t>(k.p1),
                         static_cast<uint64_t>(k.p2),
                         static_cast<uint64_t>(k.c)}) {
        h ^= v;
        h *= 0x100000001b3ULL;
      }
      return static_cast<size_t>(h);
    }
  };
  std::unordered_set<ChainKey, ChainHash> chains;
  for (const Triple& f0 : store.BySubject(t)) {
    if (!PredicateAllowed(f0.p) || !ExpandableObject(f0.o)) continue;
    for (const Triple& f1 : store.BySubject(f0.o)) {
      if (!PredicateAllowed(f1.p) || !ExpandableObject(f1.o)) continue;
      if (f1.o == t) continue;
      for (const Triple& f2 : store.BySubject(f1.o)) {
        if (!PredicateAllowed(f2.p)) continue;
        if (kb_->dict().kind(f2.o) == TermKind::kBlank) continue;
        if (f2.o == t) continue;
        chains.insert(ChainKey{f0.p, f1.p, f2.p, f2.o});
      }
    }
  }
  counts.chains_two_vars = chains.size();
  return counts;
}

}  // namespace remi
