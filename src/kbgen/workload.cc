#include "kbgen/workload.h"

#include <algorithm>

namespace remi {

std::vector<TermId> ClassMembersByProminence(const KnowledgeBase& kb,
                                             TermId cls) {
  const auto members = kb.EntitiesOfClass(cls);
  std::vector<TermId> out(members.begin(), members.end());
  std::sort(out.begin(), out.end(), [&kb](TermId a, TermId b) {
    const uint64_t fa = kb.EntityFrequency(a);
    const uint64_t fb = kb.EntityFrequency(b);
    if (fa != fb) return fa > fb;
    return a < b;
  });
  return out;
}

std::vector<TermId> LargestClasses(const KnowledgeBase& kb, size_t count,
                                   size_t min_members) {
  std::vector<TermId> classes = kb.classes();
  std::sort(classes.begin(), classes.end(), [&kb](TermId a, TermId b) {
    const size_t sa = kb.EntitiesOfClass(a).size();
    const size_t sb = kb.EntitiesOfClass(b).size();
    if (sa != sb) return sa > sb;
    return a < b;
  });
  std::vector<TermId> out;
  for (const TermId cls : classes) {
    if (out.size() >= count) break;
    if (kb.EntitiesOfClass(cls).size() < min_members) continue;
    out.push_back(cls);
  }
  return out;
}

std::vector<TargetSet> SampleEntitySets(const KnowledgeBase& kb,
                                        const std::vector<TermId>& classes,
                                        const WorkloadConfig& config,
                                        Rng* rng) {
  std::vector<TargetSet> sets;
  if (classes.empty() || config.num_sets == 0) return sets;

  // Candidate pools per class (top fraction by prominence).
  std::vector<std::vector<TermId>> pools;
  pools.reserve(classes.size());
  for (const TermId cls : classes) {
    std::vector<TermId> members = ClassMembersByProminence(kb, cls);
    if (config.top_fraction < 1.0) {
      const size_t keep = std::max<size_t>(
          3, static_cast<size_t>(config.top_fraction *
                                 static_cast<double>(members.size())));
      if (members.size() > keep) members.resize(keep);
    }
    pools.push_back(std::move(members));
  }

  // Set-size schedule honouring the requested proportions.
  const double total =
      config.frac_size1 + config.frac_size2 + config.frac_size3;
  const size_t n1 = static_cast<size_t>(
      config.frac_size1 / total * static_cast<double>(config.num_sets));
  const size_t n2 = static_cast<size_t>(
      config.frac_size2 / total * static_cast<double>(config.num_sets));
  std::vector<size_t> sizes;
  sizes.reserve(config.num_sets);
  for (size_t i = 0; i < config.num_sets; ++i) {
    sizes.push_back(i < n1 ? 1 : (i < n1 + n2 ? 2 : 3));
  }
  rng->Shuffle(&sizes);

  for (size_t i = 0; i < config.num_sets; ++i) {
    const size_t set_size = sizes[i];
    // Round-robin over classes, skipping pools that are too small.
    TargetSet set;
    for (size_t attempt = 0; attempt < classes.size(); ++attempt) {
      const size_t c = (i + attempt) % classes.size();
      if (pools[c].size() < set_size) continue;
      set.cls = classes[c];
      for (const size_t idx :
           rng->SampleWithoutReplacement(pools[c].size(), set_size)) {
        set.entities.push_back(pools[c][idx]);
      }
      std::sort(set.entities.begin(), set.entities.end());
      break;
    }
    if (!set.entities.empty()) sets.push_back(std::move(set));
  }
  return sets;
}

}  // namespace remi
