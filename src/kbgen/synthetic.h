// Synthetic Zipfian knowledge bases.
//
// The paper evaluates on DBpedia 2016-10 (42.07M facts, 1951 predicates)
// and a Wikidata dump (15.9M facts, 752 predicates). Neither dump is
// available offline, so experiments run on seeded synthetic KBs that
// reproduce the distributional properties REMI's behaviour depends on
// (DESIGN.md §5):
//
//   * Zipfian predicate usage and entity popularity — the very premise of
//     the paper's Eq. 1 power-law compression;
//   * a class system (rdf:type) with skewed class sizes, since workloads
//     sample entity sets per class;
//   * predicate domain/range classes, so multi-hop joins (paths, stars)
//     exist and conditional rankings are non-trivial;
//   * literal-valued predicates and occasional blank nodes, exercising the
//     enumerator's blank-node and literal rules.
//
// Presets DBpediaLike() and WikidataLike() mirror the two evaluation KBs
// at laptop scale (the `scale` knob grows them toward the originals).

#pragma once

#include <cstdint>
#include <string>

#include "kb/knowledge_base.h"

namespace remi {

/// Parameters of the synthetic world generator.
struct SyntheticKbConfig {
  uint64_t seed = 42;
  size_t num_entities = 40000;
  size_t num_predicates = 400;
  size_t num_classes = 48;
  /// Content facts (type and label facts are added on top).
  size_t num_facts = 400000;

  /// Zipf exponent of the per-predicate fact budget.
  double predicate_zipf = 1.05;
  /// Zipf exponent of subject popularity within a class.
  double subject_zipf = 0.85;
  /// Zipf exponent of object popularity within a range class.
  double object_zipf = 1.0;
  /// Zipf exponent of class sizes.
  double class_zipf = 0.9;

  /// Fraction of predicates whose range is a literal pool.
  double literal_predicate_fraction = 0.2;
  /// Probability that an entity-ranged fact routes through a fresh blank
  /// node (the blank then links onward to the sampled entity).
  double blank_node_fraction = 0.01;

  bool add_labels = true;
  std::string base_iri = "http://synth.remi.example/";

  /// DBpedia-flavoured preset: more predicates, denser graph.
  static SyntheticKbConfig DBpediaLike(double scale = 1.0);
  /// Wikidata-flavoured preset: fewer predicates, sparser graph.
  static SyntheticKbConfig WikidataLike(double scale = 1.0);
};

/// Generates the synthetic KB. Deterministic in `config.seed`.
KnowledgeBase BuildSyntheticKb(const SyntheticKbConfig& config,
                               const KbOptions& kb_options = KbOptions());

}  // namespace remi
