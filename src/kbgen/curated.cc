#include "kbgen/curated.h"

#include "kbgen/kb_builder.h"

namespace remi {

namespace {

// Cities with their country, for background volume.
struct CityRow {
  const char* name;
  const char* country;
};

constexpr CityRow kCities[] = {
    {"Paris", "France"},        {"Rennes", "France"},
    {"Nantes", "France"},       {"Brest", "France"},
    {"Lyon", "France"},         {"Marseille", "France"},
    {"Berlin", "Germany"},      {"Munich", "Germany"},
    {"Hamburg", "Germany"},     {"Rome", "Italy"},
    {"Pisa", "Italy"},          {"Milan", "Italy"},
    {"Madrid", "Spain"},        {"Barcelona", "Spain"},
    {"London", "United_Kingdom"}, {"Manchester", "United_Kingdom"},
    {"Amsterdam", "Netherlands"}, {"Prague", "Czech_Republic"},
    {"Vienna", "Austria"},      {"Bern", "Switzerland"},
    {"Zurich", "Switzerland"},  {"Wellington", "New_Zealand"},
    {"Auckland", "New_Zealand"}, {"Georgetown", "Guyana"},
    {"Paramaribo", "Suriname"}, {"Lima", "Peru"},
    {"Quito", "Ecuador"},       {"Brasilia", "Brazil"},
    {"Buenos_Aires", "Argentina"}, {"Santiago", "Chile"},
    {"Bogota", "Colombia"},     {"Caracas", "Venezuela"},
    {"La_Paz", "Bolivia"},      {"Asuncion", "Paraguay"},
    {"Montevideo", "Uruguay"},
};

// Country -> (continent, official language).
struct CountryRow {
  const char* name;
  const char* continent;
  const char* language;
};

constexpr CountryRow kCountries[] = {
    {"France", "Europe", "French"},
    {"Germany", "Europe", "German"},
    {"Italy", "Europe", "Italian"},
    {"Spain", "Europe", "Spanish"},
    {"United_Kingdom", "Europe", "English"},
    {"Netherlands", "Europe", "Dutch"},
    {"Czech_Republic", "Europe", "Czech"},
    {"Austria", "Europe", "German"},
    {"New_Zealand", "Oceania", "English"},
    // South America: Romance everywhere except Guyana and Suriname
    // (paper §2.2.2: the Germanic-language RE for these two).
    {"Guyana", "South_America", "English"},
    {"Suriname", "South_America", "Dutch"},
    {"Brazil", "South_America", "Portuguese"},
    {"Argentina", "South_America", "Spanish"},
    {"Chile", "South_America", "Spanish"},
    {"Peru", "South_America", "Spanish"},
    {"Ecuador", "South_America", "Spanish"},
    {"Colombia", "South_America", "Spanish"},
    {"Venezuela", "South_America", "Spanish"},
    {"Bolivia", "South_America", "Spanish"},
    {"Paraguay", "South_America", "Spanish"},
    {"Uruguay", "South_America", "Spanish"},
};

struct LanguageRow {
  const char* name;
  const char* family;
};

constexpr LanguageRow kLanguages[] = {
    {"French", "Romance"},    {"Italian", "Romance"},
    {"Spanish", "Romance"},   {"Portuguese", "Romance"},
    {"Romansh", "Romance"},   {"German", "Germanic"},
    {"English", "Germanic"},  {"Dutch", "Germanic"},
    {"Czech", "Slavic"},
};

}  // namespace

KbOptions CuratedKbOptions() {
  KbOptions options;
  // The curated KB has ~200 entities; the paper's 1% rule would materialize
  // inverses for a single entity, so use 15% to cover the main hubs
  // (including the Kingdom-of-France noise twin).
  options.inverse_top_fraction = 0.15;
  return options;
}

KnowledgeBase BuildCuratedKb(const KbOptions& options) {
  KbBuilder b;

  // --- geography -----------------------------------------------------------
  for (const auto& city : kCities) {
    b.Type(city.name, "City");
    b.Fact(city.name, "cityIn", city.country);
    std::string label(city.name);
    for (auto& c : label) {
      if (c == '_') c = ' ';
    }
    b.Label(city.name, label);
  }
  for (const auto& country : kCountries) {
    b.Type(country.name, "Country");
    b.Fact(country.name, "in", country.continent);
    b.Fact(country.name, "officialLanguage", country.language);
    std::string label(country.name);
    for (auto& c : label) {
      if (c == '_') c = ' ';
    }
    b.Label(country.name, label);
  }
  for (const auto& lang : kLanguages) {
    b.Type(lang.name, "Language");
    b.Fact(lang.name, "langFamily", lang.family);
    b.Label(lang.name, lang.name);
  }
  for (const char* family : {"Romance", "Germanic", "Slavic"}) {
    b.Type(family, "LanguageFamily");
    b.Label(family, family);
  }
  for (const char* cont : {"Europe", "South_America", "Oceania"}) {
    b.Type(cont, "Continent");
  }
  b.Label("South_America", "South America");
  // Switzerland: four official languages (§3.1 multiplicity remark).
  b.Type("Switzerland", "Country");
  b.Fact("Switzerland", "in", "Europe");
  b.Label("Switzerland", "Switzerland");
  for (const char* lang : {"Italian", "German", "French", "Romansh"}) {
    b.Fact("Switzerland", "officialLanguage", lang);
  }

  // --- Paris (§1, §4.1.3) ----------------------------------------------------
  b.Fact("Paris", "capitalOf", "France");
  // DBpedia noise: Paris is also the capital of the Kingdom of France, so
  // capitalOf⁻¹(x, Paris) is NOT an RE for France (§4.1.3). The historical
  // kingdom is a rich DBpedia page, so it gets enough facts to be
  // prominent (and hence to receive materialized inverse facts).
  b.Type("Kingdom_of_France", "Country");
  b.Label("Kingdom_of_France", "Kingdom of France");
  b.Fact("Paris", "capitalOf", "Kingdom_of_France");
  b.Fact("Kingdom_of_France", "in", "Europe");
  b.Fact("Kingdom_of_France", "officialLanguage", "French");
  b.Fact("France", "successorOf", "Kingdom_of_France");
  b.Type("French_Revolution", "Event");
  b.Label("French_Revolution", "French Revolution");
  b.Fact("Kingdom_of_France", "hadEvent", "French_Revolution");
  b.Type("Hundred_Years_War", "Event");
  b.Fact("Kingdom_of_France", "hadEvent", "Hundred_Years_War");
  b.Type("Louis_XIV", "Person");
  b.Label("Louis_XIV", "Louis XIV");
  b.Fact("Louis_XIV", "ruled", "Kingdom_of_France");
  b.Type("Versailles", "City");
  b.Label("Versailles", "Versailles");
  b.Fact("Versailles", "cityIn", "Kingdom_of_France");
  b.Fact("Berlin", "capitalOf", "Germany");
  b.Fact("Rome", "capitalOf", "Italy");
  b.Fact("Madrid", "capitalOf", "Spain");
  b.Fact("London", "capitalOf", "United_Kingdom");
  b.Fact("Amsterdam", "capitalOf", "Netherlands");
  b.Fact("Prague", "capitalOf", "Czech_Republic");
  b.Fact("Vienna", "capitalOf", "Austria");
  b.Fact("Bern", "capitalOf", "Switzerland");
  b.Fact("Wellington", "capitalOf", "New_Zealand");
  b.Fact("Georgetown", "capitalOf", "Guyana");
  b.Fact("Paramaribo", "capitalOf", "Suriname");
  b.Fact("Lima", "capitalOf", "Peru");
  b.Fact("Quito", "capitalOf", "Ecuador");

  b.Type("Eiffel_Tower", "Monument");
  b.Label("Eiffel_Tower", "Eiffel Tower");
  b.Fact("Eiffel_Tower", "locatedIn", "Paris");
  b.Type("Victor_Hugo", "Person");
  b.Label("Victor_Hugo", "Victor Hugo");
  b.Fact("Victor_Hugo", "restingPlace", "Paris");
  b.Type("Voltaire", "Person");
  b.Label("Voltaire", "Voltaire");
  b.Fact("Voltaire", "bornIn", "Paris");

  // --- Figure 1: Rennes & Nantes ------------------------------------------
  b.Type("Brittany", "Region");
  b.Label("Brittany", "Brittany");
  b.Fact("Rennes", "belongedTo", "Brittany");
  b.Fact("Nantes", "belongedTo", "Brittany");
  b.Fact("Brest", "belongedTo", "Brittany");

  b.Type("Socialist_Party", "Party");
  b.Label("Socialist_Party", "Socialist Party");
  b.Type("Green_Party", "Party");
  b.Label("Green_Party", "Green Party");
  b.Type("Liberal_Party", "Party");
  b.Label("Liberal_Party", "Liberal Party");

  const struct {
    const char* city;
    const char* mayor;
    const char* party;
  } kMayors[] = {
      {"Rennes", "Nathalie_Appere", "Socialist_Party"},
      {"Nantes", "Johanna_Rolland", "Socialist_Party"},
      {"Paris", "Anne_Hidalgo", "Socialist_Party"},
      {"Marseille", "Benoit_Payan", "Socialist_Party"},
      {"Brest", "Francois_Cuillandre", "Liberal_Party"},
      {"Lyon", "Gregory_Doucet", "Green_Party"},
      {"Pisa", "Michele_Conti", "Liberal_Party"},
  };
  for (const auto& row : kMayors) {
    b.Type(row.mayor, "Person");
    std::string label(row.mayor);
    for (auto& c : label) {
      if (c == '_') c = ' ';
    }
    b.Label(row.mayor, label);
    b.Fact(row.city, "mayor", row.mayor);
    b.Fact(row.mayor, "party", row.party);
  }

  b.Type("Epitech", "University");
  b.Label("Epitech", "Epitech");
  b.Fact("Rennes", "placeOf", "Epitech");
  b.Fact("Nantes", "placeOf", "Epitech");
  b.Fact("Paris", "placeOf", "Epitech");
  b.Type("Sorbonne", "University");
  b.Label("Sorbonne", "Sorbonne");
  b.Fact("Paris", "placeOf", "Sorbonne");

  // --- the Einstein supervisor chain (§1, §3.2) -----------------------------
  for (const char* person :
       {"Johann_J_Mueller", "Alfred_Kleiner", "Albert_Einstein",
        "Heinrich_Burkhardt", "Hermann_Minkowski"}) {
    b.Type(person, "Person");
    std::string label(person);
    for (auto& c : label) {
      if (c == '_') c = ' ';
    }
    b.Label(person, label);
  }
  b.Fact("Johann_J_Mueller", "supervisorOf", "Alfred_Kleiner");
  b.Fact("Alfred_Kleiner", "supervisorOf", "Albert_Einstein");
  b.Fact("Heinrich_Burkhardt", "supervisorOf", "Hermann_Minkowski");
  // Einstein is a hub: many facts mention him, making him prominent.
  b.Fact("Albert_Einstein", "bornIn", "Munich");
  b.Fact("Albert_Einstein", "citizenOf", "Switzerland");
  b.Fact("Albert_Einstein", "citizenOf", "Germany");
  b.Fact("Albert_Einstein", "fieldOf", "Physics");
  b.Type("Physics", "Discipline");
  b.Type("Nobel_Prize", "Award");
  b.Label("Nobel_Prize", "Nobel Prize");
  b.Fact("Albert_Einstein", "won", "Nobel_Prize");

  // --- §4.1.3 anecdotes -----------------------------------------------------
  b.Type("Marie_Curie", "Person");
  b.Label("Marie_Curie", "Marie Curie");
  b.Type("Aplastic_Anemia", "Disease");
  b.Label("Aplastic_Anemia", "aplastic anemia");
  b.Fact("Marie_Curie", "diedOf", "Aplastic_Anemia");
  b.Fact("Marie_Curie", "won", "Nobel_Prize");
  b.Fact("Marie_Curie", "fieldOf", "Physics");
  b.Type("Heart_Failure", "Disease");
  b.Fact("Victor_Hugo", "diedOf", "Heart_Failure");

  b.Type("Neil_Armstrong", "Person");
  b.Label("Neil_Armstrong", "Neil Armstrong");
  b.Type("Atlantic_Ocean", "Ocean");
  b.Label("Atlantic_Ocean", "Atlantic Ocean");
  b.Type("Earth", "Planet");
  b.Label("Earth", "Earth");
  b.Fact("Neil_Armstrong", "restingPlace", "Atlantic_Ocean");
  b.Fact("Atlantic_Ocean", "partOf", "Earth");
  b.Fact("Neil_Armstrong", "memberOf", "Apollo_11");
  b.Type("Apollo_11", "SpaceMission");
  b.Label("Apollo_11", "Apollo 11");

  b.Type("Agrofert", "Company");
  b.Label("Agrofert", "Agrofert");
  b.Type("Andrej_Babis", "Person");
  b.Label("Andrej_Babis", "Andrej Babis");
  b.Fact("Agrofert", "ceo", "Andrej_Babis");
  b.Fact("Andrej_Babis", "primeMinisterOf", "Czech_Republic");
  b.Type("Skoda", "Company");
  b.Label("Skoda", "Skoda");
  b.Fact("Skoda", "ceo", "Klaus_Zellmer");
  b.Type("Klaus_Zellmer", "Person");

  b.Type("Inca_Civil_War", "Event");
  b.Label("Inca_Civil_War", "Inca Civil War");
  b.Fact("Ecuador", "hadEvent", "Inca_Civil_War");
  b.Fact("Peru", "hadEvent", "Inca_Civil_War");
  b.Type("Falklands_War", "Event");
  b.Fact("Argentina", "hadEvent", "Falklands_War");

  // --- movies (§4.1.3) ------------------------------------------------------
  const struct {
    const char* film;
    const char* country;
    const char* actor;
  } kFilms[] = {
      {"The_Hobbit_1", "New_Zealand", "Christopher_Lee"},
      {"The_Hobbit_2", "New_Zealand", "Christopher_Lee"},
      {"The_Piano", "New_Zealand", "Holly_Hunter"},
      {"Whale_Rider", "New_Zealand", "Keisha_Castle_Hughes"},
      {"Altri_Templi", "Italy", "Michele_Conti"},
      {"La_Dolce_Vita", "Italy", "Marcello_Mastroianni"},
      {"Amelie", "France", "Audrey_Tautou"},
  };
  for (const auto& row : kFilms) {
    b.Type(row.film, "Film");
    std::string label(row.film);
    for (auto& c : label) {
      if (c == '_') c = ' ';
    }
    b.Label(row.film, label);
    b.Fact(row.film, "country", row.country);
    b.Fact(row.film, "actor", row.actor);
    b.Type(row.actor, "Person");
    std::string actor_label(row.actor);
    for (auto& c : actor_label) {
      if (c == '_') c = ' ';
    }
    b.Label(row.actor, actor_label);
  }
  b.Type("Buddhism", "Religion");
  b.Label("Buddhism", "Buddhism");
  b.Fact("Christopher_Lee", "religion", "Buddhism");
  // The mayor of Pisa acts in "Altri templi": actor(x,y) ∧ leaderOf(y,
  // Pisa) becomes the "narratively interesting" RE of §4.1.3.
  b.Fact("Michele_Conti", "leaderOf", "Pisa");

  // Background volume so prominence rankings are non-trivial: France and a
  // few hubs get extra mentions.
  const struct {
    const char* subject;
    const char* pred;
    const char* object;
  } kExtra[] = {
      {"France", "memberOf", "European_Union"},
      {"Germany", "memberOf", "European_Union"},
      {"Italy", "memberOf", "European_Union"},
      {"Spain", "memberOf", "European_Union"},
      {"Netherlands", "memberOf", "European_Union"},
      {"Austria", "memberOf", "European_Union"},
      {"Czech_Republic", "memberOf", "European_Union"},
      {"Eiffel_Tower", "visitedBy", "Millions"},
      {"France", "borders", "Germany"},
      {"France", "borders", "Italy"},
      {"France", "borders", "Spain"},
      {"France", "borders", "Switzerland"},
      {"Germany", "borders", "Austria"},
      {"Germany", "borders", "Netherlands"},
      {"Germany", "borders", "Czech_Republic"},
      {"Peru", "borders", "Ecuador"},
      {"Peru", "borders", "Chile"},
      {"Peru", "borders", "Bolivia"},
      {"Brazil", "borders", "Argentina"},
      {"Brazil", "borders", "Peru"},
      {"Guyana", "borders", "Suriname"},
      {"Guyana", "borders", "Brazil"},
      {"Suriname", "borders", "Brazil"},
  };
  for (const auto& row : kExtra) {
    b.Fact(row.subject, row.pred, row.object);
    if (std::string(row.pred) == "borders") {
      // Borders are symmetric in the world (and in DBpedia, which lists
      // both directions); without this, "borders(x, Brazil)" would be a
      // spurious two-country RE.
      b.Fact(row.object, row.pred, row.subject);
    }
  }
  // Chile completes the Brazil ring so borders(x, Brazil) stays ambiguous
  // even among non-targets of common queries.
  b.Type("Chile", "Country");

  // A supervision "tail": advisor -> student pairs whose students are
  // documented people (label, birthplace, citizenship). Their global
  // prominence pushes Alfred Kleiner deep in the supervisorOf object
  // ranking, so the chain through the famous Einstein becomes the cheaper
  // description of Müller (§3.2's argument for the extended bias).
  const struct {
    const char* advisor;
    const char* student;
    const char* born;
    const char* citizen;
  } kSupervision[] = {
      {"Prof_Weber", "Student_Meier", "Zurich", "Switzerland"},
      {"Prof_Huber", "Student_Frei", "Bern", "Switzerland"},
      {"Prof_Graf", "Student_Keller", "Munich", "Germany"},
      {"Prof_Moser", "Student_Roth", "Berlin", "Germany"},
      {"Prof_Vogel", "Student_Gerber", "Vienna", "Austria"},
      {"Prof_Frey", "Student_Brunner", "Hamburg", "Germany"},
      {"Prof_Zimmer", "Student_Suter", "Zurich", "Switzerland"},
      {"Prof_Baumann", "Student_Wyss", "Bern", "Switzerland"},
      {"Prof_Egger", "Student_Schmid", "Munich", "Germany"},
      {"Prof_Koch", "Student_Bucher", "Vienna", "Austria"},
  };
  for (const auto& row : kSupervision) {
    b.Type(row.advisor, "Person");
    b.Type(row.student, "Person");
    b.Fact(row.advisor, "supervisorOf", row.student);
    std::string label(row.student);
    for (auto& c : label) {
      if (c == '_') c = ' ';
    }
    b.Label(row.student, label);
    b.Fact(row.student, "bornIn", row.born);
    b.Fact(row.student, "citizenOf", row.citizen);
  }
  b.Type("European_Union", "Organization");
  b.Label("European_Union", "European Union");

  return std::move(b).Build(options);
}

}  // namespace remi
