// Workload sampling for the paper's experiments.
//
// §4.2.2: "We tested the systems on 100 sets of DBpedia and Wikidata
// entities ... randomly chosen so that they consist of 1, 2, and 3 entities
// of the same class in proportions of 50%, 30%, and 20%."
// §4.1.1: entity sets "randomly sampled from the 5% most frequent entities
// in four classes".

#pragma once

#include <cstdint>
#include <vector>

#include "kb/knowledge_base.h"
#include "util/random.h"

namespace remi {

/// One sampled target set (all entities share `cls`). Named TargetSet to
/// keep it distinct from query::EntitySet, the match-set representation.
struct TargetSet {
  std::vector<TermId> entities;
  TermId cls = kNullTerm;
};

/// Sampling parameters.
struct WorkloadConfig {
  size_t num_sets = 100;
  /// Proportions of set sizes 1 / 2 / 3 (normalized internally).
  double frac_size1 = 0.5;
  double frac_size2 = 0.3;
  double frac_size3 = 0.2;
  /// Restrict candidates to the top fraction of each class's members by
  /// global prominence (1.0 = whole class, §4.1.1 uses 0.05).
  double top_fraction = 1.0;
};

/// Returns the members of `cls` ordered by descending global prominence.
std::vector<TermId> ClassMembersByProminence(const KnowledgeBase& kb,
                                             TermId cls);

/// The `count` largest classes of the KB by member count (descending),
/// excluding classes with fewer than `min_members` members. Stand-ins for
/// the paper's Person / Settlement / Album ∪ Film / Organization picks.
std::vector<TermId> LargestClasses(const KnowledgeBase& kb, size_t count,
                                   size_t min_members = 4);

/// Samples entity sets per the workload configuration; classes are drawn
/// round-robin from `classes`. Deterministic in `*rng`.
std::vector<TargetSet> SampleEntitySets(const KnowledgeBase& kb,
                                        const std::vector<TermId>& classes,
                                        const WorkloadConfig& config,
                                        Rng* rng);

}  // namespace remi
