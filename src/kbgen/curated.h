// A hand-curated mini world KB containing every running example of the
// paper, used by tests, examples, and the Figure 1 demo:
//
//   * Paris as "the capital of France" vs "the resting place of Victor
//     Hugo" (§1), including the DBpedia noise twin capitalOf(Paris,
//     Kingdom_of_France) (§4.1.3);
//   * the South America / Germanic-official-language RE for
//     {Guyana, Suriname} (§2.2.2);
//   * the Johann J. Müller "supervisor of the supervisor of Albert
//     Einstein" chain (§1, §3.2);
//   * Figure 1's Rennes/Nantes world: belongedTo(x, Brittany),
//     mayor(x,y) ∧ party(y, Socialist), placeOf(x, Epitech);
//   * Switzerland's four official languages (§3.1's multiplicity remark);
//   * the §4.1.3 anecdotes: Marie Curie / aplastic anemia, Neil
//     Armstrong's Atlantic resting place, Agrofert / Andrej Babiš,
//     Ecuador & Peru / Inca Civil War, the New Zealand movies, and the
//     Italian movie "Altri templi".
//
// Entity local names are stable; use FindEntity(kb, "Paris") etc.

#pragma once

#include "kb/knowledge_base.h"

namespace remi {

/// Default KB options for the curated KB (a higher inverse fraction than
/// the paper's 1% because the KB is tiny).
KbOptions CuratedKbOptions();

/// Builds the curated mini world KB (~160 entities, ~700 base facts).
KnowledgeBase BuildCuratedKb(const KbOptions& options = CuratedKbOptions());

}  // namespace remi
