#include "kbgen/kb_builder.h"

namespace remi {

TermId KbBuilder::Iri(std::string_view local_name) {
  return dict_.InternIri(base_iri_ + std::string(local_name));
}

TermId KbBuilder::Literal(std::string_view value) {
  // Built with += rather than `"\"" + std::string(value) + "\""`: GCC
  // 12's -Wrestrict misfires on the rvalue operator+ overload (PR105329).
  std::string quoted;
  quoted.reserve(value.size() + 2);
  quoted += '"';
  quoted += value;
  quoted += '"';
  return dict_.Intern(TermKind::kLiteral, quoted);
}

TermId KbBuilder::Blank(std::string_view label) {
  return dict_.Intern(TermKind::kBlank, label);
}

void KbBuilder::Add(TermId s, TermId p, TermId o) {
  triples_.push_back(Triple{s, p, o});
}

void KbBuilder::Fact(std::string_view s, std::string_view p,
                     std::string_view o) {
  Add(Iri(s), Iri(p), Iri(o));
}

void KbBuilder::LiteralFact(std::string_view s, std::string_view p,
                            std::string_view value) {
  Add(Iri(s), Iri(p), Literal(value));
}

void KbBuilder::Type(std::string_view s, std::string_view cls) {
  Add(Iri(s), dict_.InternIri(kRdfTypeIri), Iri(cls));
}

void KbBuilder::Label(std::string_view s, std::string_view text) {
  Add(Iri(s), dict_.InternIri(kRdfsLabelIri), Literal(text));
}

KnowledgeBase KbBuilder::Build(const KbOptions& options) && {
  return KnowledgeBase::Build(std::move(dict_), std::move(triples_), options);
}

Result<TermId> FindEntity(const KnowledgeBase& kb, std::string_view local_name,
                          std::string_view base_iri) {
  return kb.dict().Lookup(TermKind::kIri,
                          std::string(base_iri) + std::string(local_name));
}

}  // namespace remi
