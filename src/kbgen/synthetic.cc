#include "kbgen/synthetic.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <numeric>
#include <vector>

#include "kbgen/kb_builder.h"
#include "util/logging.h"
#include "util/random.h"

namespace remi {

namespace {

/// An affine index permutation idx -> (a * idx + c) mod m with gcd(a,m)=1,
/// used to give every predicate its own notion of "popular" subjects and
/// objects without storing a full permutation.
class AffinePermutation {
 public:
  AffinePermutation(size_t m, Rng* rng) : m_(m == 0 ? 1 : m) {
    do {
      a_ = rng->NextBounded(m_) | 1;  // odd helps but is not sufficient
    } while (std::gcd(a_, m_) != 1);
    c_ = rng->NextBounded(m_);
  }

  size_t Apply(size_t idx) const { return (a_ * (idx % m_) + c_) % m_; }

 private:
  uint64_t m_;
  uint64_t a_ = 1;
  uint64_t c_ = 0;
};

/// Caches ZipfSampler instances by (n, s); the generator reuses a handful
/// of (class size, exponent) combinations thousands of times.
class SamplerCache {
 public:
  const ZipfSampler& Get(size_t n, double s) {
    const auto key = std::make_pair(n, s);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      it = cache_
               .emplace(key, std::make_unique<ZipfSampler>(n == 0 ? 1 : n, s))
               .first;
    }
    return *it->second;
  }

 private:
  std::map<std::pair<size_t, double>, std::unique_ptr<ZipfSampler>> cache_;
};

}  // namespace

SyntheticKbConfig SyntheticKbConfig::DBpediaLike(double scale) {
  SyntheticKbConfig config;
  config.seed = 20161001;
  config.num_entities = static_cast<size_t>(40000 * scale);
  config.num_predicates = static_cast<size_t>(400 * scale > 1951
                                                  ? 1951
                                                  : 400 * scale);
  config.num_classes = 48;
  config.num_facts = static_cast<size_t>(400000 * scale);
  config.literal_predicate_fraction = 0.25;
  config.base_iri = "http://synth.remi.example/dbpedia/";
  return config;
}

SyntheticKbConfig SyntheticKbConfig::WikidataLike(double scale) {
  SyntheticKbConfig config;
  config.seed = 15900000;
  config.num_entities = static_cast<size_t>(25000 * scale);
  config.num_predicates =
      static_cast<size_t>(150 * scale > 752 ? 752 : 150 * scale);
  config.num_classes = 32;
  config.num_facts = static_cast<size_t>(180000 * scale);
  config.literal_predicate_fraction = 0.15;
  config.subject_zipf = 0.9;
  config.base_iri = "http://synth.remi.example/wikidata/";
  return config;
}

KnowledgeBase BuildSyntheticKb(const SyntheticKbConfig& config,
                               const KbOptions& kb_options) {
  REMI_CHECK(config.num_entities > 0);
  REMI_CHECK(config.num_predicates > 0);
  REMI_CHECK(config.num_classes > 0);

  Rng rng(config.seed);
  SamplerCache samplers;
  KbBuilder builder(config.base_iri);

  // --- entities and classes --------------------------------------------------
  std::vector<TermId> entity_ids(config.num_entities);
  for (size_t i = 0; i < config.num_entities; ++i) {
    entity_ids[i] = builder.Iri("E" + std::to_string(i));
  }
  std::vector<TermId> class_ids(config.num_classes);
  for (size_t c = 0; c < config.num_classes; ++c) {
    class_ids[c] = builder.Iri("Class" + std::to_string(c));
  }
  const TermId type_pred = builder.dict().InternIri(kRdfTypeIri);
  const TermId label_pred = builder.dict().InternIri(kRdfsLabelIri);

  // Assign each entity to a Zipf-sampled class; remember class members.
  const ZipfSampler& class_sampler =
      samplers.Get(config.num_classes, config.class_zipf);
  std::vector<std::vector<size_t>> class_members(config.num_classes);
  for (size_t i = 0; i < config.num_entities; ++i) {
    const size_t cls = class_sampler.Sample(&rng) - 1;
    class_members[cls].push_back(i);
    builder.Add(entity_ids[i], type_pred, class_ids[cls]);
    if (config.add_labels) {
      builder.Add(entity_ids[i], label_pred,
                  builder.Literal("Entity " + std::to_string(i)));
    }
  }

  // --- predicate schemas -----------------------------------------------------
  struct PredicateSchema {
    TermId id;
    size_t domain_class;
    size_t range_class;   // ignored when literal_range
    bool literal_range;
    size_t budget;
    AffinePermutation subject_perm;
    AffinePermutation object_perm;
    std::vector<TermId> literal_pool;
  };

  // Per-predicate fact budgets follow a Zipf law over predicate rank.
  std::vector<double> weights(config.num_predicates);
  double weight_sum = 0;
  for (size_t r = 0; r < config.num_predicates; ++r) {
    weights[r] = std::pow(static_cast<double>(r + 1), -config.predicate_zipf);
    weight_sum += weights[r];
  }

  std::vector<PredicateSchema> schemas;
  schemas.reserve(config.num_predicates);
  for (size_t r = 0; r < config.num_predicates; ++r) {
    size_t domain = class_sampler.Sample(&rng) - 1;
    if (class_members[domain].empty()) domain = 0;
    size_t range = class_sampler.Sample(&rng) - 1;
    if (class_members[range].empty()) range = 0;
    const bool literal_range =
        rng.NextDouble() < config.literal_predicate_fraction;
    const size_t budget = static_cast<size_t>(
        static_cast<double>(config.num_facts) * weights[r] / weight_sum);
    PredicateSchema schema{
        builder.Iri("p" + std::to_string(r)),
        domain,
        range,
        literal_range,
        budget,
        AffinePermutation(std::max<size_t>(class_members[domain].size(), 1),
                          &rng),
        AffinePermutation(std::max<size_t>(class_members[range].size(), 1),
                          &rng),
        {}};
    if (literal_range) {
      // Literal pool of sub-linear size: frequent predicates reuse values,
      // giving literals a conditional frequency distribution too.
      const size_t pool = std::max<size_t>(
          4, static_cast<size_t>(std::pow(static_cast<double>(budget), 0.6)));
      schema.literal_pool.reserve(pool);
      for (size_t v = 0; v < pool; ++v) {
        schema.literal_pool.push_back(builder.Literal(
            "p" + std::to_string(r) + "_v" + std::to_string(v)));
      }
    }
    schemas.push_back(std::move(schema));
  }

  // --- facts -------------------------------------------------------------------
  size_t blank_counter = 0;
  for (const PredicateSchema& schema : schemas) {
    const auto& domain = class_members[schema.domain_class];
    const auto& range = class_members[schema.range_class];
    if (domain.empty()) continue;
    const ZipfSampler& subject_sampler =
        samplers.Get(domain.size(), config.subject_zipf);
    const ZipfSampler& object_sampler = samplers.Get(
        schema.literal_range ? schema.literal_pool.size() : range.size(),
        config.object_zipf);
    for (size_t i = 0; i < schema.budget; ++i) {
      const size_t subject_rank = subject_sampler.Sample(&rng) - 1;
      const TermId subject =
          entity_ids[domain[schema.subject_perm.Apply(subject_rank)]];
      if (schema.literal_range) {
        const size_t v = object_sampler.Sample(&rng) - 1;
        builder.Add(subject, schema.id, schema.literal_pool[v]);
        continue;
      }
      if (range.empty()) continue;
      const size_t object_rank = object_sampler.Sample(&rng) - 1;
      const TermId object =
          entity_ids[range[schema.object_perm.Apply(object_rank)]];
      if (rng.NextDouble() < config.blank_node_fraction) {
        // Route through a fresh blank node: subject -p-> _:b -p-> object.
        const TermId blank =
            builder.Blank("b" + std::to_string(blank_counter++));
        builder.Add(subject, schema.id, blank);
        builder.Add(blank, schema.id, object);
      } else {
        builder.Add(subject, schema.id, object);
      }
    }
  }

  return std::move(builder).Build(kb_options);
}

}  // namespace remi
