// A convenience assembler for building KBs programmatically (used by the
// curated mini-KB, the synthetic generators, and many tests).

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "kb/knowledge_base.h"
#include "rdf/dictionary.h"
#include "rdf/triple.h"

namespace remi {

/// \brief Accumulates triples against a dictionary with IRI shorthands.
///
/// Local names are expanded against a base IRI ("http://remi.example/
/// by default): Ent("Paris") interns <http://remi.example/Paris>.
class KbBuilder {
 public:
  explicit KbBuilder(std::string base_iri = "http://remi.example/")
      : base_iri_(std::move(base_iri)) {}

  /// Interns an entity/predicate IRI from a local name.
  TermId Iri(std::string_view local_name);

  /// Interns a plain string literal (canonical quoted form).
  TermId Literal(std::string_view value);

  /// Interns a blank node.
  TermId Blank(std::string_view label);

  /// Adds a fact from interned ids.
  void Add(TermId s, TermId p, TermId o);

  /// Adds a fact from local names (object is an IRI).
  void Fact(std::string_view s, std::string_view p, std::string_view o);

  /// Adds a fact whose object is a string literal.
  void LiteralFact(std::string_view s, std::string_view p,
                   std::string_view value);

  /// Adds rdf:type.
  void Type(std::string_view s, std::string_view cls);

  /// Adds rdfs:label.
  void Label(std::string_view s, std::string_view text);

  size_t size() const { return triples_.size(); }
  Dictionary& dict() { return dict_; }
  std::vector<Triple>& triples() { return triples_; }

  /// Consumes the builder and produces a KnowledgeBase.
  KnowledgeBase Build(const KbOptions& options = KbOptions()) &&;

 private:
  std::string base_iri_;
  Dictionary dict_;
  std::vector<Triple> triples_;
};

/// Looks up the entity interned for `local_name` under `base_iri`.
Result<TermId> FindEntity(const KnowledgeBase& kb, std::string_view local_name,
                          std::string_view base_iri = "http://remi.example/");

}  // namespace remi
