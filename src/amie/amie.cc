#include "amie/amie.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace remi {

namespace {

/// Cap on collected binding values per variable during refinement; keeps
/// candidate generation bounded on hub-heavy KBs.
constexpr size_t kMaxVarValues = 512;

std::string AtomKey(const RuleAtom& atom,
                    const std::unordered_map<int, int>& renumber) {
  // Built with += rather than `"v" + std::to_string(...)`: GCC 12's
  // -Wrestrict misfires on the rvalue operator+ overload (PR105329).
  const auto side = [&renumber](bool is_var, int var, TermId constant) {
    std::string out(is_var ? "v" : "c");
    if (is_var) {
      auto it = renumber.find(var);
      out += std::to_string(it == renumber.end() ? -1 : it->second);
    } else {
      out += std::to_string(constant);
    }
    return out;
  };
  return std::to_string(atom.predicate) + "(" +
         side(atom.subject_is_var(), atom.subject_var, atom.subject_const) +
         "," +
         side(atom.object_is_var(), atom.object_var, atom.object_const) +
         ")";
}

/// Canonical key of a rule body: minimum over body permutations of the
/// first-occurrence variable renumbering. Bodies have <= 3 atoms, so the
/// permutation sweep is at most 6 arrangements.
std::string CanonicalKey(const std::vector<RuleAtom>& body) {
  std::vector<size_t> order(body.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::string best;
  do {
    std::unordered_map<int, int> renumber;
    renumber[0] = 0;
    int next = 1;
    std::string key;
    for (const size_t idx : order) {
      const RuleAtom& atom = body[idx];
      if (atom.subject_is_var() && !renumber.count(atom.subject_var)) {
        renumber[atom.subject_var] = next++;
      }
      if (atom.object_is_var() && !renumber.count(atom.object_var)) {
        renumber[atom.object_var] = next++;
      }
      key += AtomKey(atom, renumber) + ";";
    }
    if (best.empty() || key < best) best = key;
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

/// Every non-head variable must occur in at least two body atoms (AMIE's
/// closed-rule condition; the head occurrence covers variable 0).
bool IsClosed(const Rule& rule) {
  std::unordered_map<int, int> occurrences;
  bool has_x = false;
  for (const RuleAtom& atom : rule.body) {
    if (atom.subject_is_var()) {
      ++occurrences[atom.subject_var];
      has_x |= atom.subject_var == 0;
    }
    if (atom.object_is_var()) {
      ++occurrences[atom.object_var];
      has_x |= atom.object_var == 0;
    }
  }
  if (!has_x) return false;
  for (const auto& [var, count] : occurrences) {
    if (var != 0 && count < 2) return false;
  }
  return true;
}

}  // namespace

bool RuleAtom::operator==(const RuleAtom& other) const {
  return predicate == other.predicate && subject_var == other.subject_var &&
         subject_const == other.subject_const &&
         object_var == other.object_var &&
         object_const == other.object_const;
}

std::string Rule::ToString(const Dictionary& dict) const {
  const auto short_name = [&dict](TermId t) {
    const std::string_view lex = dict.lexical(t);
    const size_t cut = lex.find_last_of("/#");
    return std::string(cut == std::string::npos ? lex : lex.substr(cut + 1));
  };
  const auto side = [&](bool is_var, int var, TermId constant) {
    if (!is_var) return short_name(constant);
    if (var == 0) return std::string("x");
    std::string out = "z";
    out += std::to_string(var);
    return out;
  };
  std::string out = "psi(x, True) <= ";
  for (size_t i = 0; i < body.size(); ++i) {
    if (i > 0) out += " ∧ ";
    const RuleAtom& a = body[i];
    out += short_name(a.predicate) + "(" +
           side(a.subject_is_var(), a.subject_var, a.subject_const) + ", " +
           side(a.object_is_var(), a.object_var, a.object_const) + ")";
  }
  return out;
}

AmieMiner::AmieMiner(const KnowledgeBase* kb, const CostModel* cost_model,
                     const AmieOptions& options)
    : kb_(kb), cost_model_(cost_model), options_(options) {}

// --- body evaluation ---------------------------------------------------------

namespace {

/// Backtracking matcher over rule atoms. Bindings map variable -> TermId
/// (kNullTerm = unbound). At each step the cheapest unresolved atom is
/// evaluated against the store.
class BodyMatcher {
 public:
  BodyMatcher(const TripleStore& store, const std::vector<RuleAtom>& body)
      : store_(store), body_(body) {}

  /// Satisfiability with variable 0 pre-bound to x.
  bool Matches(TermId x) {
    bindings_.assign(16, kNullTerm);
    bindings_[0] = x;
    used_.assign(body_.size(), false);
    return Solve(body_.size());
  }

  /// Enumerates solutions with x bound, calling visit(bindings) per
  /// solution; visit returns false to stop enumeration.
  template <typename Visitor>
  void Enumerate(TermId x, Visitor visit) {
    bindings_.assign(16, kNullTerm);
    bindings_[0] = x;
    used_.assign(body_.size(), false);
    stop_ = false;
    EnumerateImpl(body_.size(), visit);
  }

 private:
  TermId Value(bool is_var, int var, TermId constant) const {
    return is_var ? bindings_[static_cast<size_t>(var)] : constant;
  }

  // Estimated candidate count of an atom under current bindings.
  size_t EstimateCost(const RuleAtom& atom) const {
    const TermId s = Value(atom.subject_is_var(), atom.subject_var,
                           atom.subject_const);
    const TermId o =
        Value(atom.object_is_var(), atom.object_var, atom.object_const);
    if (s != kNullTerm && o != kNullTerm) return 0;
    if (s != kNullTerm) return store_.CountPredicateSubject(atom.predicate, s);
    if (o != kNullTerm) return store_.CountPredicateObject(atom.predicate, o);
    return store_.CountPredicate(atom.predicate);
  }

  int PickAtom() const {
    int best = -1;
    size_t best_cost = 0;
    for (size_t i = 0; i < body_.size(); ++i) {
      if (used_[i]) continue;
      const size_t cost = EstimateCost(body_[i]);
      if (best < 0 || cost < best_cost) {
        best = static_cast<int>(i);
        best_cost = cost;
      }
    }
    return best;
  }

  bool Solve(size_t remaining) {
    if (remaining == 0) return true;
    const int idx = PickAtom();
    const RuleAtom& atom = body_[static_cast<size_t>(idx)];
    used_[static_cast<size_t>(idx)] = true;
    bool found = false;
    ForEachMatch(atom, [&](TermId s, TermId o) {
      if (Bind(atom.subject_is_var(), atom.subject_var, s) &&
          Bind(atom.object_is_var(), atom.object_var, o) &&
          Solve(remaining - 1)) {
        found = true;
      }
      return !found;  // stop iterating once satisfied
    });
    used_[static_cast<size_t>(idx)] = false;
    return found;
  }

  template <typename Visitor>
  void EnumerateImpl(size_t remaining, Visitor& visit) {
    if (stop_) return;
    if (remaining == 0) {
      if (!visit(bindings_)) stop_ = true;
      return;
    }
    const int idx = PickAtom();
    const RuleAtom& atom = body_[static_cast<size_t>(idx)];
    used_[static_cast<size_t>(idx)] = true;
    ForEachMatch(atom, [&](TermId s, TermId o) {
      if (Bind(atom.subject_is_var(), atom.subject_var, s) &&
          Bind(atom.object_is_var(), atom.object_var, o)) {
        EnumerateImpl(remaining - 1, visit);
      }
      return !stop_;
    });
    used_[static_cast<size_t>(idx)] = false;
  }

  // Binds a variable side to a value; returns false on conflict (same
  // variable already bound to a different value). Constant sides are
  // pre-filtered by ForEachMatch and always succeed. Bindings are rolled
  // back by ForEachMatch after each fact.
  bool Bind(bool is_var, int var, TermId value) {
    if (!is_var) return true;
    TermId& slot = bindings_[static_cast<size_t>(var)];
    if (slot == kNullTerm) {
      slot = value;
      bound_stack_.push_back(var);
      return true;
    }
    return slot == value;
  }

  // Iterates the facts compatible with the atom's bound sides.
  template <typename Fn>
  void ForEachMatch(const RuleAtom& atom, Fn fn) {
    const TermId s = Value(atom.subject_is_var(), atom.subject_var,
                           atom.subject_const);
    const TermId o =
        Value(atom.object_is_var(), atom.object_var, atom.object_const);
    const size_t stack_before = bound_stack_.size();
    const auto emit = [&](TermId es, TermId eo) {
      const bool keep = fn(es, eo);
      // Roll back any bindings fn made for this fact.
      while (bound_stack_.size() > stack_before) {
        bindings_[static_cast<size_t>(bound_stack_.back())] = kNullTerm;
        bound_stack_.pop_back();
      }
      return keep;
    };
    if (s != kNullTerm && o != kNullTerm) {
      if (store_.Contains(s, atom.predicate, o)) emit(s, o);
      return;
    }
    if (s != kNullTerm) {
      for (const Triple& t : store_.ByPredicateSubject(atom.predicate, s)) {
        if (!emit(t.s, t.o)) return;
      }
      return;
    }
    if (o != kNullTerm) {
      for (const Triple& t : store_.ByPredicateObject(atom.predicate, o)) {
        if (!emit(t.s, t.o)) return;
      }
      return;
    }
    for (const Triple& t : store_.ByPredicate(atom.predicate)) {
      if (!emit(t.s, t.o)) return;
    }
  }

  const TripleStore& store_;
  const std::vector<RuleAtom>& body_;
  std::vector<TermId> bindings_;
  std::vector<bool> used_;
  std::vector<int> bound_stack_;
  bool stop_ = false;
};

}  // namespace

bool AmieMiner::BodyMatches(const std::vector<RuleAtom>& body,
                            TermId x) const {
  BodyMatcher matcher(kb_->store(), body);
  return matcher.Matches(x);
}

std::vector<TermId> AmieMiner::EvaluateBody(
    const std::vector<RuleAtom>& body) const {
  // Candidate x values from the most selective atom mentioning x.
  const TripleStore& store = kb_->store();
  std::vector<TermId> candidates;
  size_t best_cost = SIZE_MAX;
  for (const RuleAtom& atom : body) {
    std::vector<TermId> current;
    size_t cost = SIZE_MAX;
    if (atom.subject_is_var() && atom.subject_var == 0) {
      if (!atom.object_is_var()) {
        const auto range =
            store.ByPredicateObject(atom.predicate, atom.object_const);
        cost = range.size();
        if (cost < best_cost) {
          for (const Triple& t : range) current.push_back(t.s);
        }
      } else {
        const auto range = store.ByPredicate(atom.predicate);
        cost = range.size();
        if (cost < best_cost) {
          for (const Triple& t : range) current.push_back(t.s);
        }
      }
    } else if (atom.object_is_var() && atom.object_var == 0) {
      if (!atom.subject_is_var()) {
        const auto range =
            store.ByPredicateSubject(atom.predicate, atom.subject_const);
        cost = range.size();
        if (cost < best_cost) {
          for (const Triple& t : range) current.push_back(t.o);
        }
      } else {
        const auto range = store.ByPredicate(atom.predicate);
        cost = range.size();
        if (cost < best_cost) {
          for (const Triple& t : range) current.push_back(t.o);
        }
      }
    } else {
      continue;
    }
    if (cost < best_cost) {
      best_cost = cost;
      std::sort(current.begin(), current.end());
      current.erase(std::unique(current.begin(), current.end()),
                    current.end());
      candidates = std::move(current);
    }
  }
  if (best_cost == SIZE_MAX) return {};

  std::vector<TermId> matches;
  BodyMatcher matcher(kb_->store(), body);
  for (const TermId x : candidates) {
    if (matcher.Matches(x)) matches.push_back(x);
  }
  return matches;
}

// --- mining ------------------------------------------------------------------

struct AmieMiner::SearchState {
  std::deque<Rule> queue;
  std::unordered_set<std::string> seen;
  std::vector<Rule> output;
  Deadline deadline;
  AmieStats stats;

  bool Enqueue(Rule rule) {
    const std::string key = CanonicalKey(rule.body);
    if (!seen.insert(key).second) return false;
    queue.push_back(std::move(rule));
    ++stats.rules_generated;
    return true;
  }
};

void AmieMiner::Refine(const Rule& rule, const std::vector<TermId>& targets,
                       SearchState* state) const {
  if (rule.num_atoms_with_head() >= options_.max_rule_length) return;
  const TripleStore& store = kb_->store();

  // Collect, per target, the values each variable can take in solutions of
  // the current body (the empty body binds x only).
  const int num_vars = rule.num_variables;
  // per variable -> per target -> set of values
  std::vector<std::vector<std::unordered_set<TermId>>> values(
      static_cast<size_t>(num_vars));
  for (auto& v : values) v.resize(targets.size());
  for (size_t ti = 0; ti < targets.size(); ++ti) {
    if (rule.body.empty()) {
      values[0][ti].insert(targets[ti]);
      continue;
    }
    BodyMatcher matcher(store, rule.body);
    size_t solutions = 0;
    matcher.Enumerate(targets[ti], [&](const std::vector<TermId>& bindings) {
      bool all_full = true;
      for (int v = 0; v < num_vars; ++v) {
        auto& set = values[static_cast<size_t>(v)][ti];
        const TermId value = bindings[static_cast<size_t>(v)];
        if (value != kNullTerm && set.size() < kMaxVarValues) {
          set.insert(value);
        }
        if (set.size() < kMaxVarValues) all_full = false;
      }
      // Stop once every variable's value set is saturated or the solution
      // budget is spent (hub joins can have huge cross products).
      return !all_full && ++solutions < 20000;
    });
  }

  const auto intersect_candidates =
      [&targets](const std::vector<std::unordered_set<uint64_t>>& per_target)
      -> std::vector<uint64_t> {
    std::vector<uint64_t> common;
    if (per_target.empty()) return common;
    for (const uint64_t key : per_target[0]) {
      bool everywhere = true;
      for (size_t ti = 1; ti < targets.size(); ++ti) {
        if (!per_target[ti].count(key)) {
          everywhere = false;
          break;
        }
      }
      if (everywhere) common.push_back(key);
    }
    std::sort(common.begin(), common.end());
    return common;
  };

  for (int v = 0; v < num_vars; ++v) {
    // Candidate instantiated atoms p(v, C) and p(C, v), and dangling
    // predicates p(v, z) / p(z, v), each keyed for cross-target
    // intersection.
    std::vector<std::unordered_set<uint64_t>> inst_out(targets.size());
    std::vector<std::unordered_set<uint64_t>> inst_in(targets.size());
    std::vector<std::unordered_set<uint64_t>> dangle_out(targets.size());
    std::vector<std::unordered_set<uint64_t>> dangle_in(targets.size());
    for (size_t ti = 0; ti < targets.size(); ++ti) {
      for (const TermId val : values[static_cast<size_t>(v)][ti]) {
        for (const Triple& t : store.BySubject(val)) {
          if (t.p == kb_->label_predicate()) continue;
          inst_out[ti].insert((static_cast<uint64_t>(t.p) << 32) | t.o);
          dangle_out[ti].insert(t.p);
        }
        // Incoming facts: scan via inverse predicates if materialized;
        // otherwise fall back to a POS probe per predicate (bounded).
        for (const TermId p : store.predicates()) {
          if (p == kb_->label_predicate() || p == kb_->type_predicate()) {
            continue;
          }
          const auto range = store.ByPredicateObject(p, val);
          if (range.empty()) continue;
          dangle_in[ti].insert(p);
          for (const Triple& t : range) {
            inst_in[ti].insert((static_cast<uint64_t>(t.p) << 32) | t.s);
          }
        }
      }
    }

    for (const uint64_t key : intersect_candidates(inst_out)) {
      const TermId p = static_cast<TermId>(key >> 32);
      const TermId c = static_cast<TermId>(key & 0xffffffffu);
      RuleAtom atom;
      atom.predicate = p;
      atom.subject_var = v;
      atom.object_var = -1;
      atom.object_const = c;
      Rule next = rule;
      next.body.push_back(atom);
      state->Enqueue(std::move(next));
    }
    for (const uint64_t key : intersect_candidates(inst_in)) {
      const TermId p = static_cast<TermId>(key >> 32);
      const TermId c = static_cast<TermId>(key & 0xffffffffu);
      RuleAtom atom;
      atom.predicate = p;
      atom.subject_var = -1;
      atom.subject_const = c;
      atom.object_var = v;
      Rule next = rule;
      next.body.push_back(atom);
      state->Enqueue(std::move(next));
    }

    if (options_.allow_existential_variables) {
      for (const uint64_t key : intersect_candidates(dangle_out)) {
        RuleAtom atom;
        atom.predicate = static_cast<TermId>(key);
        atom.subject_var = v;
        atom.object_var = rule.num_variables;
        Rule next = rule;
        next.body.push_back(atom);
        ++next.num_variables;
        state->Enqueue(std::move(next));
      }
      for (const uint64_t key : intersect_candidates(dangle_in)) {
        RuleAtom atom;
        atom.predicate = static_cast<TermId>(key);
        atom.subject_var = rule.num_variables;
        atom.object_var = v;
        Rule next = rule;
        next.body.push_back(atom);
        ++next.num_variables;
        state->Enqueue(std::move(next));
      }

      // Closing atoms between existing variable pairs.
      for (int v2 = 0; v2 < num_vars; ++v2) {
        if (v2 == v) continue;
        std::vector<std::unordered_set<uint64_t>> closing(targets.size());
        for (size_t ti = 0; ti < targets.size(); ++ti) {
          for (const TermId val : values[static_cast<size_t>(v)][ti]) {
            for (const Triple& t : store.BySubject(val)) {
              if (values[static_cast<size_t>(v2)][ti].count(t.o)) {
                closing[ti].insert(t.p);
              }
            }
          }
        }
        for (const uint64_t key : intersect_candidates(closing)) {
          RuleAtom atom;
          atom.predicate = static_cast<TermId>(key);
          atom.subject_var = v;
          atom.object_var = v2;
          Rule next = rule;
          bool duplicate = false;
          for (const RuleAtom& existing : next.body) {
            if (existing == atom) {
              duplicate = true;
              break;
            }
          }
          if (duplicate) continue;
          next.body.push_back(atom);
          state->Enqueue(std::move(next));
        }
      }
    }
  }
}

Result<AmieResult> AmieMiner::MineRe(
    const std::vector<TermId>& targets) const {
  if (targets.empty()) {
    return Status::InvalidArgument("target set is empty");
  }
  std::vector<TermId> sorted_targets(targets.begin(), targets.end());
  std::sort(sorted_targets.begin(), sorted_targets.end());
  sorted_targets.erase(
      std::unique(sorted_targets.begin(), sorted_targets.end()),
      sorted_targets.end());

  Timer timer;
  SearchState state;
  if (options_.timeout_seconds > 0) {
    state.deadline = Deadline::AfterSeconds(options_.timeout_seconds);
  }

  Rule empty;
  state.queue.push_back(empty);

  while (!state.queue.empty()) {
    if (state.deadline.Expired()) {
      state.stats.timed_out = true;
      break;
    }
    if (options_.max_expansions > 0 &&
        state.stats.rules_expanded >= options_.max_expansions) {
      break;
    }
    Rule rule = std::move(state.queue.front());
    state.queue.pop_front();
    ++state.stats.rules_expanded;

    if (!rule.body.empty()) {
      // Support check: every target must satisfy the body.
      bool supported = true;
      for (const TermId t : sorted_targets) {
        ++state.stats.body_evaluations;
        if (!BodyMatches(rule.body, t)) {
          supported = false;
          break;
        }
      }
      if (!supported) continue;

      // Confidence check on closed rules: the body's x-matches must be
      // exactly the target set.
      if (IsClosed(rule)) {
        ++state.stats.body_evaluations;
        std::vector<TermId> matches = EvaluateBody(rule.body);
        if (matches == sorted_targets) {
          state.output.push_back(rule);
        }
      }
    }
    Refine(rule, sorted_targets, &state);
  }

  AmieResult result;
  result.rules = std::move(state.output);
  result.stats = state.stats;
  result.stats.seconds = timer.ElapsedSeconds();

  // Rank output by Ĉfr as the paper does for AMIE's answers.
  double best = CostModel::kInfiniteCost;
  for (size_t i = 0; i < result.rules.size(); ++i) {
    double cost = 0;
    for (const RuleAtom& atom : result.rules[i].body) {
      cost += cost_model_->PredicateBits(atom.predicate);
      if (!atom.object_is_var()) {
        cost += cost_model_->ObjectBits(atom.object_const, atom.predicate);
      }
      if (!atom.subject_is_var()) {
        cost += cost_model_->SubjectBits(atom.subject_const, atom.predicate);
      }
    }
    if (cost < best) {
      best = cost;
      result.best_rule = static_cast<int>(i);
      result.best_cost = cost;
    }
  }
  return result;
}

}  // namespace remi
