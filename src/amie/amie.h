// An AMIE-style ILP rule miner used as the runtime baseline (paper §4.2).
//
// RE mining is reduced to rule mining exactly as the paper prescribes: a
// surrogate head predicate ψ with facts ψ(t, True) for every target t, and
// AMIE asked for rules ψ(x, True) ⇐ ∧ pᵢ(Xᵢ, Yᵢ) with
//   support   >= |T|   (every target must be predicted), and
//   confidence = 1.0   (no entity outside T may be predicted),
// so the rule body is a referring expression. The miner reproduces AMIE's
// search strategy: breadth-first refinement of open rules via the three
// operators (dangling atom, instantiated atom, closing atom), closed-rule
// output, and support-based pruning. Constants are allowed — the very
// configuration §4.2.2 identifies as AMIE's weak spot ("its performance is
// heavily affected when bound [constants] are allowed in atoms").
//
// The maximum rule length counts the head (paper sets l = 4, i.e. three
// body atoms). Language modes mirror Table 4's two rows: the standard bias
// (instantiated atoms on x only) and REMI-like bias (existential variables
// allowed).

#pragma once

#include <string>
#include <vector>

#include "complexity/cost_model.h"
#include "kb/knowledge_base.h"
#include "util/status.h"
#include "util/timer.h"

namespace remi {

/// One atom of a rule body: p(s, o) where each side is a variable (>= 0)
/// or a constant. Variable 0 is the head variable x.
struct RuleAtom {
  TermId predicate = kNullTerm;
  int subject_var = -1;           ///< -1 means constant
  TermId subject_const = kNullTerm;
  int object_var = -1;
  TermId object_const = kNullTerm;

  bool subject_is_var() const { return subject_var >= 0; }
  bool object_is_var() const { return object_var >= 0; }
  bool operator==(const RuleAtom& other) const;
};

/// A candidate/output rule: the body of ψ(x, True) ⇐ body.
struct Rule {
  std::vector<RuleAtom> body;
  int num_variables = 1;  ///< variables 0..num_variables-1 are in use

  int num_atoms_with_head() const {
    return static_cast<int>(body.size()) + 1;
  }
  std::string ToString(const Dictionary& dict) const;
};

/// Mining configuration.
struct AmieOptions {
  /// Maximum atoms including the head (paper: 4).
  int max_rule_length = 4;
  /// Allow atoms that introduce existential variables (REMI-like bias).
  /// When false only instantiated atoms on x are generated (the standard
  /// language bias of conjunctive bound atoms).
  bool allow_existential_variables = true;
  /// Per-call timeout; 0 disables.
  double timeout_seconds = 0.0;
  /// Safety valve on refinement queue expansions; 0 disables.
  uint64_t max_expansions = 0;
};

/// Mining statistics.
struct AmieStats {
  uint64_t rules_expanded = 0;   ///< rules popped from the BFS queue
  uint64_t rules_generated = 0;  ///< refinements enqueued
  uint64_t body_evaluations = 0;
  double seconds = 0.0;
  bool timed_out = false;
};

/// Mining outcome: all REs found (bodies with support |T| and confidence
/// 1.0), plus the least complex one according to Ĉfr as the paper ranks
/// AMIE's output.
struct AmieResult {
  std::vector<Rule> rules;
  /// Index into `rules` of the least complex RE, or -1 when none found.
  int best_rule = -1;
  double best_cost = 0.0;
  AmieStats stats;
};

/// \brief The baseline miner.
class AmieMiner {
 public:
  /// \param kb the KB (not owned)
  /// \param cost_model Ĉfr model used to rank output rules (not owned)
  AmieMiner(const KnowledgeBase* kb, const CostModel* cost_model,
            const AmieOptions& options = {});

  /// Mines REs for `targets`. Fails on an empty target set.
  Result<AmieResult> MineRe(const std::vector<TermId>& targets) const;

  /// Exact match set of a rule body (bindings of x). Exposed for tests.
  std::vector<TermId> EvaluateBody(const std::vector<RuleAtom>& body) const;

  /// True if the body matches with x bound to `x`. Exposed for tests.
  bool BodyMatches(const std::vector<RuleAtom>& body, TermId x) const;

 private:
  struct SearchState;

  void Refine(const Rule& rule, const std::vector<TermId>& targets,
              SearchState* state) const;

  const KnowledgeBase* kb_;
  const CostModel* cost_model_;
  AmieOptions options_;
};

}  // namespace remi
