// Vectorized word-level set kernels behind a function-pointer dispatch.
//
// The steady state of the REMI search kernel (remi/remi.cc) is a stream of
// three operations over 64-bit bitmap words — AND+popcount (the count-first
// node decision), AND-store+popcount (arena-frame materialization) and
// subset tests (redundant-subtree pruning) — plus the one-time bulk bitmap
// builds of the pinned-queue forced twins. Each operation has a portable
// scalar implementation (the correctness oracle) and SIMD variants
// (AVX2 / AVX-512-VPOPCNTDQ / NEON) selected at runtime from the CPU probe
// in util/cpu_features.h. All variants are compiled into every binary via
// per-function target attributes; no build flags change, and the scalar
// path remains selectable everywhere via REMI_SIMD=scalar or
// ForceSimdLevel().
//
// Contracts shared by all variants (the property tests in
// tests/query/simd_kernels_test.cc enforce them against the scalar oracle,
// including unaligned word counts and all-zero/all-one words):
//   * buffers need only natural (8-byte) alignment — vector loads are
//     unaligned; tails of fewer-than-vector words are handled exactly;
//   * and_popcount_capped may return any value > cap once the true count
//     exceeds cap (early exit); a return <= cap is the exact cardinality;
//   * aliasing: and_store_popcount permits out == a or out == b.

#pragma once

#include <cstddef>
#include <cstdint>

#include "rdf/term.h"
#include "util/cpu_features.h"

namespace remi {

/// One resolved set of kernel entry points (all non-null).
struct SetKernels {
  /// |popcount(a & b)| over `n` words with early exit past `cap`.
  size_t (*and_popcount_capped)(const uint64_t* a, const uint64_t* b,
                                size_t n, size_t cap);
  /// True iff (a & ~b) == 0 over `n` words (a ⊆ b on the word range).
  bool (*subset)(const uint64_t* a, const uint64_t* b, size_t n);
  /// out[i] = a[i] & b[i] for i < n; returns popcount of the result.
  size_t (*and_store_popcount)(const uint64_t* a, const uint64_t* b,
                               uint64_t* out, size_t n);
  /// Builds a bitmap from `n` sorted, deduplicated ids: zero-fills
  /// words[0, num_words) and sets each id's bit. Every id must satisfy
  /// id / 64 < num_words.
  void (*build_bitmap)(const TermId* ids, size_t n, uint64_t* words,
                       size_t num_words);
};

/// The kernels for the currently active dispatch level (one relaxed
/// atomic read + table index — cheap enough for per-call use, and
/// ForceSimdLevel() takes effect immediately).
const SetKernels& ActiveSetKernels();

/// The kernels a specific level would use, clamped to what this CPU
/// supports (for the oracle comparisons in tests and bench/micro_simd).
const SetKernels& SetKernelsFor(SimdLevel level);

}  // namespace remi
