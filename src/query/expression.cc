#include "query/expression.h"

#include <algorithm>
#include <tuple>

namespace remi {

namespace {

std::string ShortName(const Dictionary& dict, TermId t) {
  if (t == kNullTerm) return "?";
  const Term& term = dict.term(t);
  if (term.kind == TermKind::kIri) {
    const size_t cut = term.lexical.find_last_of("/#");
    return cut == std::string::npos ? term.lexical
                                    : term.lexical.substr(cut + 1);
  }
  if (term.kind == TermKind::kBlank) return "_:" + term.lexical;
  return term.lexical;
}

std::tuple<uint8_t, TermId, TermId, TermId, TermId, TermId> Key(
    const SubgraphExpression& e) {
  return {static_cast<uint8_t>(e.shape), e.p0, e.p1, e.p2, e.c1, e.c2};
}

}  // namespace

const char* SubgraphShapeToString(SubgraphShape shape) {
  switch (shape) {
    case SubgraphShape::kAtom:
      return "atom";
    case SubgraphShape::kPath:
      return "path";
    case SubgraphShape::kPathStar:
      return "path+star";
    case SubgraphShape::kTwinPair:
      return "2-closed";
    case SubgraphShape::kTwinTriple:
      return "3-closed";
  }
  return "unknown";
}

SubgraphExpression SubgraphExpression::Atom(TermId p, TermId constant) {
  SubgraphExpression e;
  e.shape = SubgraphShape::kAtom;
  e.p0 = p;
  e.c1 = constant;
  return e;
}

SubgraphExpression SubgraphExpression::Path(TermId p0, TermId p1,
                                            TermId constant) {
  SubgraphExpression e;
  e.shape = SubgraphShape::kPath;
  e.p0 = p0;
  e.p1 = p1;
  e.c1 = constant;
  return e;
}

SubgraphExpression SubgraphExpression::PathStar(TermId p0, TermId p1,
                                                TermId c1, TermId p2,
                                                TermId c2) {
  SubgraphExpression e;
  e.shape = SubgraphShape::kPathStar;
  e.p0 = p0;
  e.p1 = p1;
  e.c1 = c1;
  e.p2 = p2;
  e.c2 = c2;
  e.Normalize();
  return e;
}

SubgraphExpression SubgraphExpression::TwinPair(TermId p0, TermId p1) {
  SubgraphExpression e;
  e.shape = SubgraphShape::kTwinPair;
  e.p0 = p0;
  e.p1 = p1;
  e.Normalize();
  return e;
}

SubgraphExpression SubgraphExpression::TwinTriple(TermId p0, TermId p1,
                                                  TermId p2) {
  SubgraphExpression e;
  e.shape = SubgraphShape::kTwinTriple;
  e.p0 = p0;
  e.p1 = p1;
  e.p2 = p2;
  e.Normalize();
  return e;
}

int SubgraphExpression::num_atoms() const {
  switch (shape) {
    case SubgraphShape::kAtom:
      return 1;
    case SubgraphShape::kPath:
    case SubgraphShape::kTwinPair:
      return 2;
    case SubgraphShape::kPathStar:
    case SubgraphShape::kTwinTriple:
      return 3;
  }
  return 0;
}

void SubgraphExpression::Normalize() {
  switch (shape) {
    case SubgraphShape::kAtom:
    case SubgraphShape::kPath:
      break;
    case SubgraphShape::kPathStar: {
      if (std::tie(p2, c2) < std::tie(p1, c1)) {
        std::swap(p1, p2);
        std::swap(c1, c2);
      }
      break;
    }
    case SubgraphShape::kTwinPair: {
      if (p1 < p0) std::swap(p0, p1);
      break;
    }
    case SubgraphShape::kTwinTriple: {
      if (p1 < p0) std::swap(p0, p1);
      if (p2 < p1) std::swap(p1, p2);
      if (p1 < p0) std::swap(p0, p1);
      break;
    }
  }
}

bool SubgraphExpression::operator==(const SubgraphExpression& other) const {
  return Key(*this) == Key(other);
}

bool SubgraphExpression::operator<(const SubgraphExpression& other) const {
  return Key(*this) < Key(other);
}

std::string SubgraphExpression::ToString(const Dictionary& dict) const {
  const auto p = [&](TermId t) { return ShortName(dict, t); };
  switch (shape) {
    case SubgraphShape::kAtom:
      return p(p0) + "(x, " + p(c1) + ")";
    case SubgraphShape::kPath:
      return p(p0) + "(x, y) ∧ " + p(p1) + "(y, " + p(c1) + ")";
    case SubgraphShape::kPathStar:
      return p(p0) + "(x, y) ∧ " + p(p1) + "(y, " + p(c1) + ") ∧ " + p(p2) +
             "(y, " + p(c2) + ")";
    case SubgraphShape::kTwinPair:
      return p(p0) + "(x, y) ∧ " + p(p1) + "(x, y)";
    case SubgraphShape::kTwinTriple:
      return p(p0) + "(x, y) ∧ " + p(p1) + "(x, y) ∧ " + p(p2) + "(x, y)";
  }
  return "?";
}

size_t SubgraphExpressionHash::operator()(const SubgraphExpression& e) const {
  // FNV-1a over the field tuple.
  uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(static_cast<uint64_t>(e.shape));
  mix(e.p0);
  mix(e.p1);
  mix(e.p2);
  mix(e.c1);
  mix(e.c2);
  return static_cast<size_t>(h);
}

Expression Expression::Conjoin(const SubgraphExpression& rho) const {
  Expression out = *this;
  auto it = std::lower_bound(out.parts.begin(), out.parts.end(), rho);
  if (it == out.parts.end() || !(*it == rho)) {
    out.parts.insert(it, rho);
  }
  return out;
}

int Expression::num_atoms() const {
  int n = 0;
  for (const auto& part : parts) n += part.num_atoms();
  return n;
}

std::string Expression::ToString(const Dictionary& dict) const {
  if (parts.empty()) return "⊤";
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += " ∧ ";
    out += parts[i].ToString(dict);
  }
  return out;
}

std::vector<AtomView> ToAtoms(const SubgraphExpression& rho, int y_var) {
  std::vector<AtomView> atoms;
  const auto x_to_const = [&](TermId pred, TermId constant) {
    AtomView a;
    a.predicate = pred;
    a.subject_is_var = true;
    a.subject_var = 0;
    a.object_is_var = false;
    a.object_const = constant;
    return a;
  };
  const auto x_to_y = [&](TermId pred) {
    AtomView a;
    a.predicate = pred;
    a.subject_is_var = true;
    a.subject_var = 0;
    a.object_is_var = true;
    a.object_var = y_var;
    return a;
  };
  const auto y_to_const = [&](TermId pred, TermId constant) {
    AtomView a;
    a.predicate = pred;
    a.subject_is_var = true;
    a.subject_var = y_var;
    a.object_is_var = false;
    a.object_const = constant;
    return a;
  };
  switch (rho.shape) {
    case SubgraphShape::kAtom:
      atoms.push_back(x_to_const(rho.p0, rho.c1));
      break;
    case SubgraphShape::kPath:
      atoms.push_back(x_to_y(rho.p0));
      atoms.push_back(y_to_const(rho.p1, rho.c1));
      break;
    case SubgraphShape::kPathStar:
      atoms.push_back(x_to_y(rho.p0));
      atoms.push_back(y_to_const(rho.p1, rho.c1));
      atoms.push_back(y_to_const(rho.p2, rho.c2));
      break;
    case SubgraphShape::kTwinPair:
      atoms.push_back(x_to_y(rho.p0));
      atoms.push_back(x_to_y(rho.p1));
      break;
    case SubgraphShape::kTwinTriple:
      atoms.push_back(x_to_y(rho.p0));
      atoms.push_back(x_to_y(rho.p1));
      atoms.push_back(x_to_y(rho.p2));
      break;
  }
  return atoms;
}

std::vector<AtomView> ToAtoms(const Expression& e) {
  std::vector<AtomView> atoms;
  int next_var = 1;
  for (const auto& part : e.parts) {
    const int y = part.has_existential_variable() ? next_var++ : 0;
    auto part_atoms = ToAtoms(part, y);
    atoms.insert(atoms.end(), part_atoms.begin(), part_atoms.end());
  }
  return atoms;
}

}  // namespace remi
