#include "query/entity_set.h"

#include <algorithm>
#include <bit>
#include <ostream>

#include "query/simd_kernels.h"

namespace remi {

namespace {

/// Galloping pays once one side is an order of magnitude smaller.
constexpr size_t kGallopRatio = 16;

void IntersectVectorsInto(const std::vector<TermId>& a,
                          const std::vector<TermId>& b,
                          std::vector<TermId>* out) {
  const std::vector<TermId>& small = a.size() <= b.size() ? a : b;
  const std::vector<TermId>& large = a.size() <= b.size() ? b : a;
  out->reserve(small.size());
  if (small.size() * kGallopRatio < large.size()) {
    // Galloping: binary-search each element of the small side in the
    // not-yet-consumed suffix of the large side.
    auto it = large.begin();
    for (const TermId id : small) {
      it = std::lower_bound(it, large.end(), id);
      if (it == large.end()) break;
      if (*it == id) out->push_back(id);
    }
  } else {
    std::set_intersection(small.begin(), small.end(), large.begin(),
                          large.end(), std::back_inserter(*out));
  }
}

std::vector<TermId> IntersectVectors(const std::vector<TermId>& a,
                                     const std::vector<TermId>& b) {
  std::vector<TermId> out;
  IntersectVectorsInto(a, b, &out);
  return out;
}

}  // namespace

EntitySet::EntitySet(std::initializer_list<TermId> ids)
    : EntitySet(FromUnsorted(std::vector<TermId>(ids), 0)) {}

EntitySet EntitySet::FromSorted(std::vector<TermId> sorted_unique,
                                size_t universe) {
  EntitySet set;
  set.ids_ = std::move(sorted_unique);
  set.size_ = set.ids_.size();
  set.universe_ = universe;
  if (!set.ids_.empty() && set.ids_.back() >= set.universe_) {
    set.universe_ = static_cast<size_t>(set.ids_.back()) + 1;
  }
  set.Adapt();
  return set;
}

EntitySet EntitySet::FromUnsorted(std::vector<TermId> ids, size_t universe) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return FromSorted(std::move(ids), universe);
}

void EntitySet::Adapt() {
  if (is_bitmap_) {
    if (!ShouldUseBitmap(size_, universe_)) ToVectorRep();
  } else {
    if (ShouldUseBitmap(size_, universe_)) ToBitmapRep();
  }
}

void EntitySet::ToBitmapRep() {
  const size_t num_words = (universe_ + 63) / 64;
  words_.resize(num_words);
  if (num_words > 0) {
    ActiveSetKernels().build_bitmap(ids_.data(), ids_.size(), words_.data(),
                                    num_words);
  }
  ids_.clear();
  ids_.shrink_to_fit();
  is_bitmap_ = true;
}

void EntitySet::ToVectorRep() {
  ids_.clear();
  ids_.reserve(size_);
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      ids_.push_back(static_cast<TermId>(w * 64 + bit));
      word &= word - 1;
    }
  }
  words_.clear();
  words_.shrink_to_fit();
  is_bitmap_ = false;
}

bool EntitySet::Contains(TermId id) const {
  if (is_bitmap_) {
    if (id >= universe_) return false;
    return (words_[id >> 6] >> (id & 63)) & 1;
  }
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

EntitySet EntitySet::Intersect(const EntitySet& other) const {
  const size_t universe = std::max(universe_, other.universe_);
  if (is_bitmap_ && other.is_bitmap_) {
    EntitySet out;
    out.is_bitmap_ = true;
    out.universe_ = universe;
    const size_t common = std::min(words_.size(), other.words_.size());
    out.words_.assign((universe + 63) / 64, 0);
    out.size_ = common == 0 ? 0
                            : ActiveSetKernels().and_store_popcount(
                                  words_.data(), other.words_.data(),
                                  out.words_.data(), common);
    out.Adapt();
    return out;
  }
  if (is_bitmap_ != other.is_bitmap_) {
    // Filter the vector side through the bitmap side.
    const EntitySet& vec = is_bitmap_ ? other : *this;
    const EntitySet& map = is_bitmap_ ? *this : other;
    std::vector<TermId> out;
    out.reserve(std::min(vec.size_, map.size_));
    for (const TermId id : vec.ids_) {
      if (map.Contains(id)) out.push_back(id);
    }
    return FromSorted(std::move(out), universe);
  }
  return FromSorted(IntersectVectors(ids_, other.ids_), universe);
}

size_t EntitySet::IntersectCount(const EntitySet& other, size_t cap) const {
  if (is_bitmap_ && other.is_bitmap_) {
    const size_t common = std::min(words_.size(), other.words_.size());
    if (common == 0) return 0;
    return ActiveSetKernels().and_popcount_capped(
        words_.data(), other.words_.data(), common, cap);
  }
  if (is_bitmap_ != other.is_bitmap_) {
    const EntitySet& vec = is_bitmap_ ? other : *this;
    const EntitySet& map = is_bitmap_ ? *this : other;
    size_t count = 0;
    for (const TermId id : vec.ids_) {
      if (map.Contains(id) && ++count > cap) return count;
    }
    return count;
  }
  const std::vector<TermId>& small = size_ <= other.size_ ? ids_ : other.ids_;
  const std::vector<TermId>& large = size_ <= other.size_ ? other.ids_ : ids_;
  size_t count = 0;
  if (small.size() * kGallopRatio < large.size()) {
    auto it = large.begin();
    for (const TermId id : small) {
      it = std::lower_bound(it, large.end(), id);
      if (it == large.end()) break;
      if (*it == id && ++count > cap) return count;
    }
  } else {
    size_t i = 0, j = 0;
    while (i < small.size() && j < large.size()) {
      if (small[i] < large[j]) {
        ++i;
      } else if (large[j] < small[i]) {
        ++j;
      } else {
        ++i;
        ++j;
        if (++count > cap) return count;
      }
    }
  }
  return count;
}

void EntitySet::IntersectInto(const EntitySet& a, const EntitySet& b,
                              EntitySet* out) {
  const size_t universe = std::max(a.universe_, b.universe_);
  out->universe_ = universe;
  if (a.is_bitmap_ && b.is_bitmap_) {
    const size_t num_words = (universe + 63) / 64;
    const size_t common = std::min(a.words_.size(), b.words_.size());
    out->words_.resize(num_words);
    const size_t count =
        common == 0 ? 0
                    : ActiveSetKernels().and_store_popcount(
                          a.words_.data(), b.words_.data(),
                          out->words_.data(), common);
    std::fill(out->words_.begin() + common, out->words_.end(), 0);
    out->size_ = count;
    out->is_bitmap_ = true;
    out->ids_.clear();
    if (!ShouldUseBitmap(count, universe)) {
      // Demote to the vector representation without releasing the word
      // buffer: the frame keeps both buffers at high-water capacity.
      out->ids_.reserve(count);
      for (size_t w = 0; w < common; ++w) {
        uint64_t word = out->words_[w];
        while (word != 0) {
          const int bit = std::countr_zero(word);
          out->ids_.push_back(static_cast<TermId>(w * 64 + bit));
          word &= word - 1;
        }
      }
      out->words_.clear();
      out->is_bitmap_ = false;
    }
    return;
  }
  out->ids_.clear();
  if (a.is_bitmap_ != b.is_bitmap_) {
    const EntitySet& vec = a.is_bitmap_ ? b : a;
    const EntitySet& map = a.is_bitmap_ ? a : b;
    out->ids_.reserve(std::min(vec.size_, map.size_));
    for (const TermId id : vec.ids_) {
      if (map.Contains(id)) out->ids_.push_back(id);
    }
  } else {
    IntersectVectorsInto(a.ids_, b.ids_, &out->ids_);
  }
  out->size_ = out->ids_.size();
  out->is_bitmap_ = false;
  if (ShouldUseBitmap(out->size_, universe)) {
    out->words_.assign((universe + 63) / 64, 0);
    for (const TermId id : out->ids_) {
      out->words_[id >> 6] |= uint64_t{1} << (id & 63);
    }
    out->ids_.clear();
    out->is_bitmap_ = true;
  } else {
    out->words_.clear();
  }
}

EntitySet EntitySet::ForcedBitmap(size_t min_universe) const {
  EntitySet out;
  out.universe_ = std::max(universe_, min_universe);
  out.size_ = size_;
  out.is_bitmap_ = true;
  const size_t num_words = (out.universe_ + 63) / 64;
  if (is_bitmap_) {
    // Same representation, possibly wider universe: copy + zero-extend.
    out.words_.assign(words_.begin(), words_.end());
    out.words_.resize(num_words, 0);
  } else {
    out.words_.resize(num_words);
    if (num_words > 0) {
      ActiveSetKernels().build_bitmap(ids_.data(), ids_.size(),
                                      out.words_.data(), num_words);
    }
  }
  return out;
}

bool EntitySet::SubsetOf(const EntitySet& other) const {
  if (size_ > other.size_) return false;
  if (is_bitmap_ && other.is_bitmap_) {
    const size_t common = std::min(words_.size(), other.words_.size());
    if (common > 0 && !ActiveSetKernels().subset(
                          words_.data(), other.words_.data(), common)) {
      return false;
    }
    for (size_t w = common; w < words_.size(); ++w) {
      if (words_[w] != 0) return false;
    }
    return true;
  }
  if (!is_bitmap_ && !other.is_bitmap_) {
    return std::includes(other.ids_.begin(), other.ids_.end(), ids_.begin(),
                         ids_.end());
  }
  for (const TermId id : *this) {
    if (!other.Contains(id)) return false;
  }
  return true;
}

bool EntitySet::operator==(const EntitySet& other) const {
  if (size_ != other.size_) return false;
  if (!is_bitmap_ && !other.is_bitmap_) return ids_ == other.ids_;
  if (is_bitmap_ && other.is_bitmap_) {
    const size_t common = std::min(words_.size(), other.words_.size());
    if (!std::equal(words_.begin(), words_.begin() + common,
                    other.words_.begin())) {
      return false;
    }
    // Sizes match, so any surplus words are zero-filled on both sides.
    return true;
  }
  return std::equal(begin(), end(), other.begin());
}

std::vector<TermId> EntitySet::ToVector() const {
  if (!is_bitmap_) return ids_;
  std::vector<TermId> out;
  out.reserve(size_);
  for (const TermId id : *this) out.push_back(id);
  return out;
}

TermId EntitySet::NextBit(TermId from) const {
  size_t w = from >> 6;
  if (w >= words_.size()) return kNullTerm;
  uint64_t word = words_[w] & (~uint64_t{0} << (from & 63));
  while (word == 0) {
    if (++w >= words_.size()) return kNullTerm;
    word = words_[w];
  }
  return static_cast<TermId>(w * 64 + std::countr_zero(word));
}

EntitySet::const_iterator::const_iterator(const EntitySet* set, size_t pos)
    : set_(set), pos_(pos) {
  if (pos_ >= set_->size_) return;
  current_ = set_->is_bitmap_ ? set_->NextBit(0) : set_->ids_[pos_];
}

EntitySet::const_iterator& EntitySet::const_iterator::operator++() {
  ++pos_;
  if (pos_ >= set_->size_) return *this;
  current_ = set_->is_bitmap_ ? set_->NextBit(current_ + 1)
                              : set_->ids_[pos_];
  return *this;
}

EntitySet IntersectSorted(const EntitySet& a, const EntitySet& b) {
  return a.Intersect(b);
}

bool SortedEquals(const EntitySet& a, const EntitySet& b) { return a == b; }

bool SortedSubset(const EntitySet& needle, const EntitySet& haystack) {
  return needle.SubsetOf(haystack);
}

std::ostream& operator<<(std::ostream& os, const EntitySet& set) {
  os << "{";
  size_t shown = 0;
  for (const TermId id : set) {
    if (shown > 0) os << ", ";
    if (++shown > 32) {
      os << "... (" << set.size() << " total)";
      break;
    }
    os << id;
  }
  return os << "}";
}

}  // namespace remi
