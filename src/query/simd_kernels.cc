#include "query/simd_kernels.h"

#include <algorithm>
#include <bit>
#include <cstring>

#if defined(__x86_64__)
#include <immintrin.h>
#elif defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace remi {

namespace {

/// Words per cap-check block in the capped popcount kernels: one
/// horizontal reduction (and early-exit opportunity) per 1 KiB of ANDed
/// data. Must be a multiple of every vector width (8 words).
constexpr size_t kCapBlockWords = 128;

/// Words in the *first* block of a capped kernel. Caps in the search
/// kernel are tiny (|T| + k), and dense operands blow through them
/// within a few words — a scalar loop exits almost immediately there,
/// so a full 1 KiB first block would hand the common case back. One or
/// two vectors' worth keeps the early exit nearly as tight as scalar
/// while long tails still amortize reductions over full blocks. Must be
/// a multiple of every vector width.
constexpr size_t kCapFirstBlockWords = 16;

// ---------------------------------------------------------------------------
// Scalar (portable oracle). Semantics-defining: every SIMD variant must be
// element-identical, and the property tests compare against these.
// ---------------------------------------------------------------------------

size_t AndPopcountCappedScalar(const uint64_t* a, const uint64_t* b, size_t n,
                               size_t cap) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<size_t>(std::popcount(a[i] & b[i]));
    if (count > cap) return count;
  }
  return count;
}

bool SubsetScalar(const uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}

size_t AndStorePopcountScalar(const uint64_t* a, const uint64_t* b,
                              uint64_t* out, size_t n) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t word = a[i] & b[i];
    out[i] = word;
    count += static_cast<size_t>(std::popcount(word));
  }
  return count;
}

/// Bitmap construction, used at every dispatch level. A store-once
/// variant (accumulate all bits of a word in a register, one store per
/// touched word instead of one read-modify-write per id) was measured
/// against this loop on sorted sparse inputs and lost at every universe
/// size — the grouping branches cost more than the RMWs they save, and
/// the zero-fill memset is already vectorized by libc — so scalar is
/// the build kernel everywhere and BENCH_simd.json records it at 1x by
/// construction.
void BuildBitmapScalar(const TermId* ids, size_t n, uint64_t* words,
                       size_t num_words) {
  std::memset(words, 0, num_words * sizeof(uint64_t));
  for (size_t i = 0; i < n; ++i) {
    words[ids[i] >> 6] |= uint64_t{1} << (ids[i] & 63);
  }
}

constexpr SetKernels kScalarKernels = {AndPopcountCappedScalar, SubsetScalar,
                                       AndStorePopcountScalar,
                                       BuildBitmapScalar};

// ---------------------------------------------------------------------------
// AVX2: 4 words per vector; popcount via the pshufb nibble lookup
// (Muła et al., "Faster population counts using AVX2 instructions") with
// psadbw widening the per-byte counts straight to 64-bit lanes.
// ---------------------------------------------------------------------------
#if defined(__x86_64__)

__attribute__((target("avx2"))) inline __m256i Popcount256(__m256i v) {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                         _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) inline uint64_t Reduce256(__m256i v) {
  const __m128i sum = _mm_add_epi64(_mm256_castsi256_si128(v),
                                    _mm256_extracti128_si256(v, 1));
  return static_cast<uint64_t>(_mm_cvtsi128_si64(sum)) +
         static_cast<uint64_t>(_mm_extract_epi64(sum, 1));
}

__attribute__((target("avx2,popcnt"))) size_t AndPopcountCappedAvx2(
    const uint64_t* a, const uint64_t* b, size_t n, size_t cap) {
  size_t count = 0;
  size_t i = 0;
  size_t block_words = kCapFirstBlockWords;
  while (i + 4 <= n) {
    const size_t block_end = std::min(n, i + block_words) & ~size_t{3};
    block_words = kCapBlockWords;
    __m256i acc = _mm256_setzero_si256();
    for (; i + 4 <= block_end; i += 4) {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
      acc = _mm256_add_epi64(acc, Popcount256(_mm256_and_si256(va, vb)));
    }
    count += Reduce256(acc);
    if (count > cap) return count;
  }
  for (; i < n; ++i) {
    count += static_cast<size_t>(std::popcount(a[i] & b[i]));
    if (count > cap) return count;
  }
  return count;
}

__attribute__((target("avx2"))) bool SubsetAvx2(const uint64_t* a,
                                                const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // testc sets CF iff (~vb & va) == 0, i.e. va ⊆ vb word-wise.
    if (!_mm256_testc_si256(vb, va)) return false;
  }
  for (; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}

__attribute__((target("avx2,popcnt"))) size_t AndStorePopcountAvx2(
    const uint64_t* a, const uint64_t* b, uint64_t* out, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i word = _mm256_and_si256(va, vb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), word);
    acc = _mm256_add_epi64(acc, Popcount256(word));
  }
  size_t count = Reduce256(acc);
  for (; i < n; ++i) {
    const uint64_t word = a[i] & b[i];
    out[i] = word;
    count += static_cast<size_t>(std::popcount(word));
  }
  return count;
}

constexpr SetKernels kAvx2Kernels = {AndPopcountCappedAvx2, SubsetAvx2,
                                     AndStorePopcountAvx2, BuildBitmapScalar};

// ---------------------------------------------------------------------------
// AVX-512 + VPOPCNTDQ: 8 words per vector, native 64-bit lane popcount,
// masked loads/stores for exact tails.
// ---------------------------------------------------------------------------
#define REMI_AVX512_TARGET "avx512f,avx512bw,avx512vl,avx512vpopcntdq"

// GCC 12's AVX-512 headers route _mm512_loadu_si512 through
// _mm512_undefined_epi32(), whose self-initialized temporary trips
// -Wmaybe-uninitialized (GCC PR105593). The value is overwritten by the
// load before any use.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"

__attribute__((target(REMI_AVX512_TARGET))) size_t AndPopcountCappedAvx512(
    const uint64_t* a, const uint64_t* b, size_t n, size_t cap) {
  size_t count = 0;
  size_t i = 0;
  size_t block_words = kCapFirstBlockWords;
  while (i + 8 <= n) {
    const size_t block_end = std::min(n, i + block_words) & ~size_t{7};
    block_words = kCapBlockWords;
    __m512i acc = _mm512_setzero_si512();
    for (; i + 8 <= block_end; i += 8) {
      const __m512i va = _mm512_loadu_si512(a + i);
      const __m512i vb = _mm512_loadu_si512(b + i);
      acc = _mm512_add_epi64(acc,
                             _mm512_popcnt_epi64(_mm512_and_si512(va, vb)));
    }
    count += static_cast<size_t>(_mm512_reduce_add_epi64(acc));
    if (count > cap) return count;
  }
  if (i < n) {
    const __mmask8 m = static_cast<__mmask8>((1u << (n - i)) - 1u);
    const __m512i va = _mm512_maskz_loadu_epi64(m, a + i);
    const __m512i vb = _mm512_maskz_loadu_epi64(m, b + i);
    count += static_cast<size_t>(_mm512_reduce_add_epi64(
        _mm512_popcnt_epi64(_mm512_and_si512(va, vb))));
  }
  return count;
}

__attribute__((target(REMI_AVX512_TARGET))) bool SubsetAvx512(
    const uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    const __m512i diff = _mm512_andnot_si512(vb, va);  // va & ~vb
    if (_mm512_test_epi64_mask(diff, diff) != 0) return false;
  }
  if (i < n) {
    const __mmask8 m = static_cast<__mmask8>((1u << (n - i)) - 1u);
    const __m512i va = _mm512_maskz_loadu_epi64(m, a + i);
    const __m512i vb = _mm512_maskz_loadu_epi64(m, b + i);
    const __m512i diff = _mm512_andnot_si512(vb, va);
    if (_mm512_test_epi64_mask(diff, diff) != 0) return false;
  }
  return true;
}

__attribute__((target(REMI_AVX512_TARGET))) size_t AndStorePopcountAvx512(
    const uint64_t* a, const uint64_t* b, uint64_t* out, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    const __m512i word = _mm512_and_si512(va, vb);
    _mm512_storeu_si512(out + i, word);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(word));
  }
  size_t count = static_cast<size_t>(_mm512_reduce_add_epi64(acc));
  if (i < n) {
    const __mmask8 m = static_cast<__mmask8>((1u << (n - i)) - 1u);
    const __m512i va = _mm512_maskz_loadu_epi64(m, a + i);
    const __m512i vb = _mm512_maskz_loadu_epi64(m, b + i);
    const __m512i word = _mm512_and_si512(va, vb);
    _mm512_mask_storeu_epi64(out + i, m, word);
    count += static_cast<size_t>(
        _mm512_reduce_add_epi64(_mm512_popcnt_epi64(word)));
  }
  return count;
}

#pragma GCC diagnostic pop

constexpr SetKernels kAvx512Kernels = {AndPopcountCappedAvx512, SubsetAvx512,
                                       AndStorePopcountAvx512,
                                       BuildBitmapScalar};

#elif defined(__aarch64__)

// ---------------------------------------------------------------------------
// NEON (baseline on AArch64): 2 words per vector, byte popcount (vcnt)
// reduced with vaddv.
// ---------------------------------------------------------------------------

inline uint64_t PopcountPair(uint64x2_t v) {
  // 16 byte-counts (each <= 8) summed horizontally: fits u16 easily.
  return vaddlvq_u8(vcntq_u8(vreinterpretq_u8_u64(v)));
}

size_t AndPopcountCappedNeon(const uint64_t* a, const uint64_t* b, size_t n,
                             size_t cap) {
  size_t count = 0;
  size_t i = 0;
  size_t block_words = kCapFirstBlockWords;
  while (i + 2 <= n) {
    const size_t block_end = std::min(n, i + block_words) & ~size_t{1};
    block_words = kCapBlockWords;
    uint64_t block = 0;
    for (; i + 2 <= block_end; i += 2) {
      block += PopcountPair(vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
    }
    count += block;
    if (count > cap) return count;
  }
  for (; i < n; ++i) {
    count += static_cast<size_t>(std::popcount(a[i] & b[i]));
    if (count > cap) return count;
  }
  return count;
}

bool SubsetNeon(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // vbic(a, b) = a & ~b; any set bit disproves the subset.
    const uint64x2_t diff = vbicq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
    if (vmaxvq_u32(vreinterpretq_u32_u64(diff)) != 0) return false;
  }
  for (; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}

size_t AndStorePopcountNeon(const uint64_t* a, const uint64_t* b,
                            uint64_t* out, size_t n) {
  size_t count = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t word = vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
    vst1q_u64(out + i, word);
    count += PopcountPair(word);
  }
  for (; i < n; ++i) {
    const uint64_t word = a[i] & b[i];
    out[i] = word;
    count += static_cast<size_t>(std::popcount(word));
  }
  return count;
}

constexpr SetKernels kNeonKernels = {AndPopcountCappedNeon, SubsetNeon,
                                     AndStorePopcountNeon, BuildBitmapScalar};

#endif  // architecture variants

}  // namespace

const SetKernels& SetKernelsFor(SimdLevel level) {
  const CpuFeatures& features = DetectCpuFeatures();
  const int tier = static_cast<int>(level);
#if defined(__x86_64__)
  if (tier >= static_cast<int>(SimdLevel::kAvx512) && features.avx512) {
    return kAvx512Kernels;
  }
  if (tier >= static_cast<int>(SimdLevel::kAvx2) && features.avx2) {
    return kAvx2Kernels;
  }
#elif defined(__aarch64__)
  if (tier >= static_cast<int>(SimdLevel::kNeon) && features.neon) {
    return kNeonKernels;
  }
#else
  (void)features;
  (void)tier;
#endif
  return kScalarKernels;
}

const SetKernels& ActiveSetKernels() {
  return SetKernelsFor(ActiveSimdLevel());
}

}  // namespace remi
