// REMI's expression language (paper §2.2 and Table 1).
//
// A *subgraph expression* is rooted at the variable x and has one of five
// shapes, with at most one additional existentially quantified variable y
// and at most three atoms (the paper's language bias, §3.2):
//
//   kAtom       p0(x, C1)
//   kPath       p0(x, y) ∧ p1(y, C1)
//   kPathStar   p0(x, y) ∧ p1(y, C1) ∧ p2(y, C2)
//   kTwinPair   p0(x, y) ∧ p1(x, y)
//   kTwinTriple p0(x, y) ∧ p1(x, y) ∧ p2(x, y)
//
// (The paper's Table 1 names: "1 atom", "Path", "Path + star", "2 closed
// atoms", "3 closed atoms".) A *referring-expression candidate* Expression
// is a conjunction of subgraph expressions sharing only x (§2.2.2).
//
// The *standard* (state-of-the-art) language bias is the kAtom-only subset.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"

namespace remi {

/// The five shapes of Table 1.
enum class SubgraphShape : uint8_t {
  kAtom = 0,
  kPath = 1,
  kPathStar = 2,
  kTwinPair = 3,
  kTwinTriple = 4,
};

const char* SubgraphShapeToString(SubgraphShape shape);

/// \brief One subgraph expression (Table 1 instance).
///
/// Field usage per shape (unused fields hold kNullTerm):
///   kAtom:       p0, c1 = C1
///   kPath:       p0, p1, c1 = C1
///   kPathStar:   p0, (p1, c1), (p2, c2) with (p1,c1) <= (p2,c2)
///   kTwinPair:   p0 < p1
///   kTwinTriple: p0 < p1 < p2
struct SubgraphExpression {
  SubgraphShape shape = SubgraphShape::kAtom;
  TermId p0 = kNullTerm;
  TermId p1 = kNullTerm;
  TermId p2 = kNullTerm;
  TermId c1 = kNullTerm;
  TermId c2 = kNullTerm;

  static SubgraphExpression Atom(TermId p, TermId constant);
  static SubgraphExpression Path(TermId p0, TermId p1, TermId constant);
  static SubgraphExpression PathStar(TermId p0, TermId p1, TermId c1,
                                     TermId p2, TermId c2);
  static SubgraphExpression TwinPair(TermId p0, TermId p1);
  static SubgraphExpression TwinTriple(TermId p0, TermId p1, TermId p2);

  int num_atoms() const;
  /// True for every shape except kAtom (they bind an extra variable y).
  bool has_existential_variable() const {
    return shape != SubgraphShape::kAtom;
  }

  /// Rewrites the expression into its canonical form: the star legs of
  /// kPathStar and the predicates of the closed shapes are sorted so that
  /// syntactically equal expressions compare equal.
  void Normalize();

  bool operator==(const SubgraphExpression& other) const;
  /// Deterministic total order (shape, then fields); used for tie-breaking
  /// and canonical Expression form, not for cost.
  bool operator<(const SubgraphExpression& other) const;

  /// Debug/NLG-independent rendering, e.g. "p0(x,y) ∧ p1(y,I1)" with IRIs
  /// shortened to local names.
  std::string ToString(const Dictionary& dict) const;
};

/// Hash functor for SubgraphExpression (for caches and sets).
struct SubgraphExpressionHash {
  size_t operator()(const SubgraphExpression& e) const;
};

/// \brief A candidate referring expression: conjunction of subgraph
/// expressions rooted at the same x (paper §2.2.2).
///
/// `parts` is kept sorted by operator< so equal conjunctions have equal
/// representations. An empty conjunction is the paper's ⊤ (matches
/// everything, cost ∞).
struct Expression {
  std::vector<SubgraphExpression> parts;

  static Expression Top() { return Expression{}; }
  bool IsTop() const { return parts.empty(); }

  /// Returns a new expression with `rho` conjoined (sorted insert).
  Expression Conjoin(const SubgraphExpression& rho) const;

  int num_atoms() const;
  bool operator==(const Expression& other) const {
    return parts == other.parts;
  }

  std::string ToString(const Dictionary& dict) const;
};

/// \brief Generic atom view p(arg0, arg1) used by the verbalizer and the
/// AMIE baseline bridge.
///
/// Variables are numbered: 0 is the root x, 1+ are existential variables.
struct AtomView {
  TermId predicate = kNullTerm;
  bool subject_is_var = true;
  int subject_var = 0;
  TermId subject_const = kNullTerm;
  bool object_is_var = false;
  int object_var = 0;
  TermId object_const = kNullTerm;
};

/// Flattens an expression into atoms, assigning each subgraph expression's
/// existential variable a fresh index (1, 2, ...).
std::vector<AtomView> ToAtoms(const Expression& e);

/// Flattens one subgraph expression with existential variable index
/// `y_var`.
std::vector<AtomView> ToAtoms(const SubgraphExpression& rho, int y_var);

}  // namespace remi
