#include "query/evaluator.h"

#include <algorithm>

namespace remi {

namespace {

// Sorted objects of span (pso range for fixed p, s): t.o ascending.
bool SpansIntersect(std::span<const Triple> a, std::span<const Triple> b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].o < b[j].o) {
      ++i;
    } else if (b[j].o < a[i].o) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

bool ThreeSpansIntersect(std::span<const Triple> a, std::span<const Triple> b,
                         std::span<const Triple> c) {
  size_t i = 0, j = 0, k = 0;
  while (i < a.size() && j < b.size() && k < c.size()) {
    const TermId m = std::max({a[i].o, b[j].o, c[k].o});
    while (i < a.size() && a[i].o < m) ++i;
    while (j < b.size() && b[j].o < m) ++j;
    while (k < c.size() && c[k].o < m) ++k;
    if (i < a.size() && j < b.size() && k < c.size() && a[i].o == m &&
        b[j].o == m && c[k].o == m) {
      return true;
    }
  }
  return false;
}

}  // namespace

Evaluator::Evaluator(const KnowledgeBase* kb, size_t cache_capacity,
                     size_t cache_shards)
    : kb_(kb),
      cache_(std::make_shared<EvalCache>(cache_capacity, cache_shards)) {}

Evaluator::Evaluator(const KnowledgeBase* kb, std::shared_ptr<EvalCache> cache)
    : kb_(kb), cache_(std::move(cache)) {}

std::shared_ptr<const MatchSet> Evaluator::Match(
    const SubgraphExpression& rho) {
  if (auto hit = cache_->Get(rho)) return hit;
  // Concurrent misses of the same expression may compute it twice; both
  // results are identical and the duplicate Put just refreshes recency.
  auto computed = ComputeMatch(rho);
  cache_->Put(rho, computed);
  return computed;
}

std::shared_ptr<const MatchSet> Evaluator::ComputeMatch(
    const SubgraphExpression& rho) const {
  subgraph_evaluations_.fetch_add(1, std::memory_order_relaxed);
  const TripleStore& store = kb_->store();
  // Bindings are collected as a sorted vector, then wrapped into an
  // EntitySet that may promote itself to a bitmap when dense.
  std::vector<TermId> out;
  switch (rho.shape) {
    case SubgraphShape::kAtom: {
      const auto range = store.ByPredicateObject(rho.p0, rho.c1);
      out.reserve(range.size());
      for (const Triple& t : range) out.push_back(t.s);  // sorted by s
      break;
    }
    case SubgraphShape::kPath:
    case SubgraphShape::kPathStar: {
      // Y = bindings of the existential variable. The binding buffers are
      // per-thread scratch: path-shaped candidates dominate queue costing
      // and pinning, so per-call vectors would dominate the allocator
      // profile there.
      thread_local std::vector<TermId> ys;
      thread_local std::vector<TermId> ys2;
      thread_local std::vector<TermId> both;
      ys.clear();
      {
        const auto range = store.ByPredicateObject(rho.p1, rho.c1);
        ys.reserve(range.size());
        for (const Triple& t : range) ys.push_back(t.s);
      }
      if (rho.shape == SubgraphShape::kPathStar) {
        ys2.clear();
        const auto range = store.ByPredicateObject(rho.p2, rho.c2);
        ys2.reserve(range.size());
        for (const Triple& t : range) ys2.push_back(t.s);
        both.clear();
        std::set_intersection(ys.begin(), ys.end(), ys2.begin(), ys2.end(),
                              std::back_inserter(both));
        ys.swap(both);
      }
      for (const TermId y : ys) {
        for (const Triple& t : store.ByPredicateObject(rho.p0, y)) {
          out.push_back(t.s);
        }
      }
      std::sort(out.begin(), out.end());
      out.erase(std::unique(out.begin(), out.end()), out.end());
      break;
    }
    case SubgraphShape::kTwinPair:
    case SubgraphShape::kTwinTriple: {
      const bool triple = rho.shape == SubgraphShape::kTwinTriple;
      // Drive the scan on the rarest predicate.
      TermId drive = rho.p0;
      size_t best = store.CountPredicate(rho.p0);
      if (store.CountPredicate(rho.p1) < best) {
        best = store.CountPredicate(rho.p1);
        drive = rho.p1;
      }
      if (triple && store.CountPredicate(rho.p2) < best) {
        drive = rho.p2;
      }
      const auto others = [&]() -> std::pair<TermId, TermId> {
        if (drive == rho.p0) return {rho.p1, triple ? rho.p2 : kNullTerm};
        if (drive == rho.p1) return {rho.p0, triple ? rho.p2 : kNullTerm};
        return {rho.p0, rho.p1};
      }();
      const auto range = store.ByPredicate(drive);  // grouped by subject
      size_t i = 0;
      while (i < range.size()) {
        const TermId s = range[i].s;
        size_t j = i;
        while (j < range.size() && range[j].s == s) ++j;
        const std::span<const Triple> a = range.subspan(i, j - i);
        const auto b = store.ByPredicateSubject(others.first, s);
        bool hit;
        if (others.second == kNullTerm) {
          hit = SpansIntersect(a, b);
        } else {
          const auto c = store.ByPredicateSubject(others.second, s);
          hit = ThreeSpansIntersect(a, b, c);
        }
        if (hit) out.push_back(s);
        i = j;
      }
      break;
    }
  }
  return std::make_shared<MatchSet>(
      EntitySet::FromSorted(std::move(out), kb_->dict().size()));
}

bool Evaluator::Matches(TermId e, const SubgraphExpression& rho) const {
  membership_tests_.fetch_add(1, std::memory_order_relaxed);
  const TripleStore& store = kb_->store();
  switch (rho.shape) {
    case SubgraphShape::kAtom:
      return store.Contains(e, rho.p0, rho.c1);
    case SubgraphShape::kPath: {
      for (const Triple& t : store.ByPredicateSubject(rho.p0, e)) {
        if (store.Contains(t.o, rho.p1, rho.c1)) return true;
      }
      return false;
    }
    case SubgraphShape::kPathStar: {
      for (const Triple& t : store.ByPredicateSubject(rho.p0, e)) {
        if (store.Contains(t.o, rho.p1, rho.c1) &&
            store.Contains(t.o, rho.p2, rho.c2)) {
          return true;
        }
      }
      return false;
    }
    case SubgraphShape::kTwinPair:
      return SpansIntersect(store.ByPredicateSubject(rho.p0, e),
                            store.ByPredicateSubject(rho.p1, e));
    case SubgraphShape::kTwinTriple:
      return ThreeSpansIntersect(store.ByPredicateSubject(rho.p0, e),
                                 store.ByPredicateSubject(rho.p1, e),
                                 store.ByPredicateSubject(rho.p2, e));
  }
  return false;
}

bool Evaluator::Matches(TermId e, const Expression& expr) const {
  for (const auto& part : expr.parts) {
    if (!Matches(e, part)) return false;
  }
  return true;
}

MatchSet Evaluator::Evaluate(const Expression& expr) {
  if (expr.IsTop()) return {};
  MatchSet current = *Match(expr.parts[0]);
  // Ping-pong between two sets so multi-part conjunctions reuse one
  // scratch buffer instead of materializing a fresh set per part.
  MatchSet scratch;
  for (size_t i = 1; i < expr.parts.size() && !current.empty(); ++i) {
    EntitySet::IntersectInto(current, *Match(expr.parts[i]), &scratch);
    std::swap(current, scratch);
  }
  return current;
}

bool Evaluator::IsReferringExpression(const Expression& expr,
                                      const MatchSet& targets) {
  if (expr.IsTop() || targets.empty()) return false;
  // Cheap necessary condition: every target satisfies every part.
  for (const TermId t : targets) {
    if (!Matches(t, expr)) return false;
  }
  // Exact condition: the intersection of the part match sets adds nothing.
  MatchSet current = *Match(expr.parts[0]);
  if (current.size() < targets.size()) return false;
  MatchSet scratch;
  for (size_t i = 1; i < expr.parts.size(); ++i) {
    if (current.size() == targets.size()) {
      // Already minimal; targets ⊆ current was verified above.
      break;
    }
    EntitySet::IntersectInto(current, *Match(expr.parts[i]), &scratch);
    std::swap(current, scratch);
    if (current.size() < targets.size()) return false;
  }
  return current == targets;
}

EvaluatorStats Evaluator::stats() const {
  EvaluatorStats s;
  s.subgraph_evaluations =
      subgraph_evaluations_.load(std::memory_order_relaxed);
  s.membership_tests = membership_tests_.load(std::memory_order_relaxed);
  const EvalCacheStats cache_stats = cache_->stats();
  s.cache_hits = cache_stats.hits;
  s.cache_misses = cache_stats.misses;
  return s;
}

void Evaluator::ResetStats() {
  subgraph_evaluations_.store(0, std::memory_order_relaxed);
  membership_tests_.store(0, std::memory_order_relaxed);
  cache_->ResetCounters();
}

}  // namespace remi
