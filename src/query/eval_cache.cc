#include "query/eval_cache.h"

namespace remi {

namespace {

size_t RoundUpToPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

EvalCache::EvalCache(size_t capacity, size_t num_shards) : capacity_(capacity) {
  if (num_shards == 0) num_shards = kDefaultShards;
  num_shards = RoundUpToPowerOfTwo(num_shards);
  // Don't spread a tiny budget so thin that shards round down to zero
  // entries (which would silently disable caching).
  while (num_shards > 1 && capacity_ > 0 && capacity_ / num_shards == 0) {
    num_shards >>= 1;
  }
  shard_mask_ = num_shards - 1;
  const size_t per_shard =
      capacity_ == 0 ? 0 : (capacity_ + num_shards - 1) / num_shards;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(per_shard));
  }
}

EvalCache::Shard& EvalCache::ShardFor(const SubgraphExpression& rho) {
  // The per-shard unordered_map consumes the hash mostly via its low bits;
  // mix before selecting a shard so both uses stay decorrelated.
  const size_t h = SubgraphExpressionHash{}(rho);
  const uint64_t mixed = static_cast<uint64_t>(h) * 0x9E3779B97F4A7C15ull;
  return *shards_[(mixed >> 32) & shard_mask_];
}

const EvalCache::Shard& EvalCache::ShardFor(
    const SubgraphExpression& rho) const {
  return const_cast<EvalCache*>(this)->ShardFor(rho);
}

std::shared_ptr<const EntitySet> EvalCache::Get(const SubgraphExpression& rho) {
  if (capacity_ == 0) {
    // Disabled cache: every lookup misses; skip the hash and the lock.
    disabled_misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Shard& shard = ShardFor(rho);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (auto hit = shard.lru.Get(rho)) return *hit;
  return nullptr;
}

void EvalCache::Put(const SubgraphExpression& rho,
                    std::shared_ptr<const EntitySet> value) {
  if (capacity_ == 0) return;
  Shard& shard = ShardFor(rho);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.lru.Put(rho, std::move(value));
}

EvalCacheStats EvalCache::stats() const {
  EvalCacheStats total;
  total.misses = disabled_misses_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->lru.hits();
    total.misses += shard->lru.misses();
    total.entries += shard->lru.size();
  }
  return total;
}

void EvalCache::ResetCounters() {
  disabled_misses_.store(0, std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.ResetCounters();
  }
}

void EvalCache::Clear() {
  disabled_misses_.store(0, std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.Clear();
  }
}

}  // namespace remi
