#include "query/eval_cache.h"

#include <array>

namespace remi {

namespace {

size_t RoundUpToPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Never-reused epoch source for the thread fronts. Epoch 0 is reserved as
/// "front empty".
std::atomic<uint64_t> g_next_front_epoch{1};

uint64_t NextFrontEpoch() {
  return g_next_front_epoch.fetch_add(1, std::memory_order_relaxed);
}

uint64_t MixHash(size_t h) {
  return static_cast<uint64_t>(h) * 0x9E3779B97F4A7C15ull;
}

/// Per-thread front: a small direct-mapped view of one EvalCache's
/// hottest entries (see kFrontSlots in the header). A slot is valid only
/// if its epoch matches the owning cache's current epoch AND its shard
/// version still matches — both lock-free reads.
struct ThreadFront {
  struct Slot {
    bool used = false;
    size_t hash = 0;
    uint64_t shard_version = 0;
    SubgraphExpression key;
    std::shared_ptr<const EntitySet> value;
  };

  uint64_t epoch = 0;
  std::array<Slot, EvalCache::kFrontSlots> slots;

  void Reset(uint64_t new_epoch) {
    epoch = new_epoch;
    for (Slot& slot : slots) {
      slot.used = false;
      slot.value.reset();
    }
  }

  Slot& SlotForHash(size_t h) {
    return slots[(MixHash(h) >> 20) & (EvalCache::kFrontSlots - 1)];
  }
};

thread_local ThreadFront tls_front;

}  // namespace

EvalCache::EvalCache(size_t capacity, size_t num_shards)
    : capacity_(capacity), front_epoch_(NextFrontEpoch()) {
  if (num_shards == 0) num_shards = kDefaultShards;
  num_shards = RoundUpToPowerOfTwo(num_shards);
  // Don't spread a tiny budget so thin that shards round down to zero
  // entries (which would silently disable caching).
  while (num_shards > 1 && capacity_ > 0 && capacity_ / num_shards == 0) {
    num_shards >>= 1;
  }
  shard_mask_ = num_shards - 1;
  const size_t per_shard =
      capacity_ == 0 ? 0 : (capacity_ + num_shards - 1) / num_shards;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(per_shard));
  }
}

size_t EvalCache::ShardIndexForHash(size_t hash) const {
  // The per-shard unordered_map consumes the hash mostly via its low bits;
  // mix before selecting a shard so both uses stay decorrelated.
  return (MixHash(hash) >> 32) & shard_mask_;
}

std::shared_ptr<const EntitySet> EvalCache::Get(const SubgraphExpression& rho) {
  if (capacity_ == 0) {
    // Disabled cache: every lookup misses; skip the hash and the lock.
    disabled_misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  const size_t h = SubgraphExpressionHash{}(rho);
  Shard& shard = *shards_[ShardIndexForHash(h)];

  // Lock-free fast path: the calling thread's front. Valid only while
  // this cache's epoch and the entry's shard version are unchanged.
  ThreadFront& front = tls_front;
  const uint64_t epoch = front_epoch_.load(std::memory_order_acquire);
  if (front.epoch != epoch) front.Reset(epoch);
  ThreadFront::Slot& slot = front.SlotForHash(h);
  if (slot.used && slot.hash == h &&
      slot.shard_version == shard.version.load(std::memory_order_acquire) &&
      slot.key == rho) {
    front_hits_.fetch_add(1, std::memory_order_relaxed);
    return slot.value;
  }

  std::shared_ptr<const EntitySet> result;
  uint64_t version;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (auto hit = shard.lru.Get(rho)) result = *hit;
    version = shard.version.load(std::memory_order_relaxed);
  }
  if (result != nullptr) {
    slot.used = true;
    slot.hash = h;
    slot.shard_version = version;
    slot.key = rho;
    slot.value = result;
  }
  return result;
}

void EvalCache::Put(const SubgraphExpression& rho,
                    std::shared_ptr<const EntitySet> value) {
  if (capacity_ == 0) return;
  const size_t h = SubgraphExpressionHash{}(rho);
  Shard& shard = *shards_[ShardIndexForHash(h)];
  uint64_t version;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.Put(rho, value);
    // Bump after the insert: every front entry filled from this shard's
    // earlier state is now suspect (one of them may just have been
    // evicted or replaced).
    version =
        shard.version.fetch_add(1, std::memory_order_release) + 1;
  }
  ThreadFront& front = tls_front;
  const uint64_t epoch = front_epoch_.load(std::memory_order_acquire);
  if (front.epoch != epoch) front.Reset(epoch);
  ThreadFront::Slot& slot = front.SlotForHash(h);
  slot.used = true;
  slot.hash = h;
  slot.shard_version = version;
  slot.key = rho;
  slot.value = std::move(value);
}

EvalCacheStats EvalCache::stats() const {
  EvalCacheStats total;
  total.misses = disabled_misses_.load(std::memory_order_relaxed);
  total.front_hits = front_hits_.load(std::memory_order_relaxed);
  total.hits = total.front_hits;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->lru.hits();
    total.misses += shard->lru.misses();
    total.entries += shard->lru.size();
  }
  return total;
}

void EvalCache::ResetCounters() {
  disabled_misses_.store(0, std::memory_order_relaxed);
  front_hits_.store(0, std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.ResetCounters();
  }
}

void EvalCache::Clear() {
  disabled_misses_.store(0, std::memory_order_relaxed);
  front_hits_.store(0, std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.Clear();
  }
  // New epoch: every thread front filled from the old contents is dead.
  front_epoch_.store(NextFrontEpoch(), std::memory_order_release);
}

}  // namespace remi
