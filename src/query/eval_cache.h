// Lock-striped sharded match-set cache for the query layer.
//
// The paper memoizes subgraph-expression match sets in an LRU cache
// (§3.5.2); P-REMI (§3.4) and batch mining hit that cache from many
// threads at once. A single mutex-guarded LRU serializes even cache
// *hits* (every Get mutates the recency list), so the cache is split
// into N independent shards: each shard owns a util/lru_cache.h LRU,
// its own mutex and its own hit/miss counters. Expressions are routed
// to shards by SubgraphExpressionHash, so concurrent lookups of
// different expressions almost never contend; stats are aggregated
// across shards on read.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "query/entity_set.h"
#include "query/expression.h"
#include "util/lru_cache.h"

namespace remi {

/// Aggregated counters of a sharded cache (sum over shards).
struct EvalCacheStats {
  /// All successful lookups, including those served by a thread front.
  uint64_t hits = 0;
  uint64_t misses = 0;
  size_t entries = 0;
  /// Breakdown of `hits`: lookups answered by the calling thread's
  /// lock-free front without touching a shard mutex.
  uint64_t front_hits = 0;
};

/// \brief Sharded LRU cache from SubgraphExpression to its match set.
///
/// Thread-safe. Each shard serializes its own operations; operations on
/// different shards proceed fully in parallel. Values are shared_ptr so a
/// match set may be evicted from its shard while another thread still
/// holds it (needed by P-REMI).
class EvalCache {
 public:
  /// Default shard count; a modest power of two keeps per-shard LRUs large
  /// enough to stay effective while making cross-thread contention rare.
  static constexpr size_t kDefaultShards = 16;

  /// Slots of the per-thread front (direct-mapped, lock-free). Each
  /// worker thread keeps its hottest expressions in thread-local storage
  /// so repeated lookups — the P-REMI pinning passes and concurrent batch
  /// runs hammering the same building blocks — stop ping-ponging shard
  /// mutexes and LRU recency lists between cores. Front entries are
  /// validated against a per-shard version that every Put bumps, so a
  /// front can never serve an entry its shard has since evicted or
  /// replaced; in the steady state (warm cache, no inserts) fronts stay
  /// valid indefinitely. The front may extend the lifetime of up to this
  /// many match sets per thread beyond their LRU eviction (they are
  /// shared_ptr-held and immutable, so stale lifetime is the only cost).
  static constexpr size_t kFrontSlots = 32;

  /// \param capacity total entry budget, split evenly across shards;
  ///        0 disables caching (every Get misses, Put is a no-op).
  /// \param num_shards rounded up to a power of two; 0 = kDefaultShards.
  explicit EvalCache(size_t capacity, size_t num_shards = 0);

  /// Returns the cached match set (marking it most-recently-used in its
  /// shard) or nullptr on a miss.
  std::shared_ptr<const EntitySet> Get(const SubgraphExpression& rho);

  /// Inserts or overwrites; evicts the shard's LRU entry when full.
  void Put(const SubgraphExpression& rho,
           std::shared_ptr<const EntitySet> value);

  /// Sums shard counters. Takes each shard mutex briefly; the result is a
  /// consistent-per-shard (not globally atomic) snapshot.
  EvalCacheStats stats() const;

  /// Zeroes the hit/miss counters without dropping cached entries.
  void ResetCounters();

  /// Drops all entries and counters.
  void Clear();

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Shard {
    explicit Shard(size_t shard_capacity) : lru(shard_capacity) {}
    std::mutex mu;
    LruCache<SubgraphExpression, std::shared_ptr<const EntitySet>,
             SubgraphExpressionHash>
        lru;
    /// Bumped by every Put: thread fronts holding entries of this shard
    /// treat any bump as an invalidation (conservative — correctness
    /// needs only eviction/replacement to invalidate).
    std::atomic<uint64_t> version{0};
  };

  size_t ShardIndexForHash(size_t hash) const;

  size_t capacity_;
  size_t shard_mask_;  // shards_.size() - 1 (power of two)
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Misses recorded by the capacity-0 fast path, which skips the hash
  /// and the shard mutex entirely (a disabled cache must not serialize
  /// concurrent evaluators on locks that guard nothing).
  std::atomic<uint64_t> disabled_misses_{0};
  /// Identity of this cache's current contents for the thread fronts:
  /// globally unique per instance and re-drawn by Clear(), so a front
  /// filled from an earlier life (or another cache) never matches.
  std::atomic<uint64_t> front_epoch_;
  std::atomic<uint64_t> front_hits_{0};
};

}  // namespace remi
