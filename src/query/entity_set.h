// Density-adaptive entity sets for the query/mining data path.
//
// Match sets in REMI (paper §3.3/§3.5.2) range from a handful of entities
// (deep in the DFS, close to the target set) to sizeable fractions of the
// KB (atoms over frequent predicates). A single representation is wrong at
// one of the two ends, so EntitySet stores either
//
//   * a sorted, deduplicated vector of TermIds (sparse sets), or
//   * a fixed-size bitmap over the dictionary universe (dense sets),
//
// and switches automatically at a density boundary. Intersection — the hot
// operation of the DFS — is a galloping merge (vector x vector, skewed), a
// linear merge (vector x vector, balanced), a filter (vector x bitmap), or
// a word-wise AND (bitmap x bitmap). Membership, subset, and equality pick
// the cheapest path for the operand representations.
//
// Sets are immutable after construction, mirroring the evaluator's cached
// match sets which are shared across threads (§3.4).

#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <iterator>
#include <vector>

#include "rdf/term.h"

namespace remi {

/// \brief Immutable set of TermIds with an adaptive representation.
class EntitySet {
 public:
  /// Bitmap when size >= universe / kDensityDivisor. At 32, the bitmap
  /// (universe bits) is no larger than the vector it replaces (32 bits per
  /// element) and membership drops from a binary search to one load.
  static constexpr size_t kDensityDivisor = 32;
  /// Never use a bitmap for tiny universes; the vector fits in a cache
  /// line anyway.
  static constexpr size_t kMinBitmapUniverse = 256;

  /// Empty set, vector representation.
  EntitySet() = default;

  /// From unsorted ids (sorted and deduplicated; unknown universe).
  EntitySet(std::initializer_list<TermId> ids);

  /// From an unsorted id range (sorted and deduplicated; unknown universe).
  template <typename It>
  EntitySet(It first, It last)
      : EntitySet(FromUnsorted(std::vector<TermId>(first, last), 0)) {}

  /// From a sorted, deduplicated vector. `universe` is one past the largest
  /// possible id (dictionary size); when the ids exceed it (including the
  /// 0 = unknown case) the universe grows to max id + 1, so a dense low-id
  /// set may still adopt the bitmap representation.
  static EntitySet FromSorted(std::vector<TermId> sorted_unique,
                              size_t universe);

  /// From arbitrary ids: sorts, deduplicates, then adapts.
  static EntitySet FromUnsorted(std::vector<TermId> ids, size_t universe);

  /// True if (size, universe) lands in the bitmap regime.
  static bool ShouldUseBitmap(size_t size, size_t universe) {
    return universe >= kMinBitmapUniverse &&
           size * kDensityDivisor >= universe;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t universe() const { return universe_; }
  bool is_bitmap() const { return is_bitmap_; }

  /// O(1) on the bitmap representation, binary search on the vector one.
  bool Contains(TermId id) const;

  /// Set intersection; the result re-adapts its representation.
  EntitySet Intersect(const EntitySet& other) const;

  /// |*this ∩ other| without materializing the intersection, with an early
  /// exit: a return value <= `cap` is the exact cardinality; a return
  /// value > `cap` only guarantees that the true cardinality exceeds
  /// `cap`. This is the count-first half of the search kernel: the DFS
  /// decides the redundant-subtree prune and the RE-acceptance test from
  /// the count alone and materializes nothing for those nodes. Bitmap
  /// pairs count by word-AND popcount, vector pairs by galloping or merge
  /// counting, mixed pairs by filtering the vector side.
  size_t IntersectCount(const EntitySet& other, size_t cap) const;

  /// Computes a ∩ b into `*out`, reusing out's existing buffers (both the
  /// vector and the bitmap buffer are kept at capacity, never shrunk) so a
  /// frame that is intersected into repeatedly stops allocating once it
  /// has grown to its high-water mark. The result is element- and
  /// representation-identical to `a.Intersect(b)`. `out` must not alias
  /// `a` or `b`.
  static void IntersectInto(const EntitySet& a, const EntitySet& b,
                            EntitySet* out);

  /// A bitmap-representation copy of this set, regardless of density, over
  /// at least `min_universe`. All operations dispatch purely on the stored
  /// representation, so a forced-bitmap set behaves identically to its
  /// vector twin — it just answers Contains in one load and intersects by
  /// word ops. The search kernel pins queue views in this form so sparse
  /// DFS prefixes intersect by |prefix| bit-tests instead of a merge over
  /// both sides.
  EntitySet ForcedBitmap(size_t min_universe) const;

  /// Heap bytes held by the internal buffers (capacity, not size): the
  /// footprint a pinned or arena-held set keeps resident.
  size_t MemoryBytes() const {
    return ids_.capacity() * sizeof(TermId) +
           words_.capacity() * sizeof(uint64_t);
  }

  /// True if *this ⊆ other.
  bool SubsetOf(const EntitySet& other) const;

  bool operator==(const EntitySet& other) const;
  bool operator!=(const EntitySet& other) const { return !(*this == other); }

  /// The elements as a sorted vector (copies on the bitmap rep).
  std::vector<TermId> ToVector() const;

  /// Forward iteration in ascending id order over either representation.
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = TermId;
    using difference_type = std::ptrdiff_t;
    using pointer = const TermId*;
    using reference = TermId;

    const_iterator() = default;
    TermId operator*() const { return current_; }
    const_iterator& operator++();
    const_iterator operator++(int) {
      const_iterator tmp = *this;
      ++*this;
      return tmp;
    }
    bool operator==(const const_iterator& o) const { return pos_ == o.pos_; }
    bool operator!=(const const_iterator& o) const { return pos_ != o.pos_; }

   private:
    friend class EntitySet;
    const_iterator(const EntitySet* set, size_t pos);

    const EntitySet* set_ = nullptr;
    size_t pos_ = 0;  ///< element index in [0, set_->size()]
    TermId current_ = kNullTerm;
  };

  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size_}; }

 private:
  /// Converts to whichever representation ShouldUseBitmap picks.
  void Adapt();
  void ToBitmapRep();
  void ToVectorRep();
  /// First set bit at or after `from`; kNullTerm when exhausted.
  TermId NextBit(TermId from) const;

  bool is_bitmap_ = false;
  size_t size_ = 0;
  size_t universe_ = 0;
  std::vector<TermId> ids_;      ///< vector rep: sorted, deduplicated
  std::vector<uint64_t> words_;  ///< bitmap rep: universe bits
};

/// Intersection as a free function (kept for the pre-EntitySet call sites).
EntitySet IntersectSorted(const EntitySet& a, const EntitySet& b);

/// True if `a` and `b` hold the same elements.
bool SortedEquals(const EntitySet& a, const EntitySet& b);

/// True if `needle` ⊆ `haystack`.
bool SortedSubset(const EntitySet& needle, const EntitySet& haystack);

/// gtest-friendly rendering: "{1, 2, 3}" (truncated for large sets).
std::ostream& operator<<(std::ostream& os, const EntitySet& set);

}  // namespace remi
