// Expression evaluation over a KnowledgeBase.
//
// This is the query layer the paper delegates to HDT + Jena (§3.5.1/2):
// atom-level bindings come from the triple store's indexed ranges and the
// joins of REMI's five shapes are executed here. Match sets of subgraph
// expressions are memoized in a sharded LRU cache ("query results are
// cached in a least-recently-used fashion", §3.5.2) because the DFS
// re-evaluates the same building blocks constantly; the sharding (see
// query/eval_cache.h) lets P-REMI workers and concurrent batch-mining
// runs hit the cache without serializing on one mutex.

#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "kb/knowledge_base.h"
#include "query/entity_set.h"
#include "query/eval_cache.h"
#include "query/expression.h"

namespace remi {

/// Set of root-variable bindings (hybrid sorted-vector / bitmap).
using MatchSet = EntitySet;

/// Snapshot of cumulative evaluation statistics.
struct EvaluatorStats {
  uint64_t subgraph_evaluations = 0;  ///< full match-set computations
  uint64_t membership_tests = 0;      ///< single-entity Matches() calls
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;

  /// Every Match() that reached the cache, hit or miss. The search kernel
  /// asserts this stays flat across the steady-state DFS (pinned queue
  /// views replace per-node lookups).
  uint64_t cache_lookups() const { return cache_hits + cache_misses; }
};

/// \brief Evaluates subgraph expressions and conjunctions on a KB.
///
/// Thread-safe: the cache is lock-striped (per-shard mutexes, see
/// EvalCache), stats are atomics, and match sets are returned as
/// shared_ptr so entries may be evicted while in use (needed by P-REMI,
/// §3.4, and by MineBatch).
class Evaluator {
 public:
  /// \param kb the knowledge base (not owned; must outlive the evaluator)
  /// \param cache_capacity total LRU capacity in entries, split across
  ///        shards; 0 disables caching.
  /// \param cache_shards shard count (rounded up to a power of two);
  ///        0 = EvalCache::kDefaultShards.
  explicit Evaluator(const KnowledgeBase* kb, size_t cache_capacity = 65536,
                     size_t cache_shards = 0);

  /// Variant sharing an externally owned cache: several evaluators over
  /// the *same* KB (e.g. the Service's per-cost-variant miners) reuse one
  /// warm match-set store, since match sets depend only on the KB. The
  /// cache must not be shared across different KBs.
  Evaluator(const KnowledgeBase* kb, std::shared_ptr<EvalCache> cache);

  /// Sorted distinct x-bindings of one subgraph expression.
  std::shared_ptr<const MatchSet> Match(const SubgraphExpression& rho);

  /// Does entity `e` satisfy `rho`? Short-circuits without computing the
  /// full match set.
  bool Matches(TermId e, const SubgraphExpression& rho) const;

  /// Does entity `e` satisfy all parts of `expr`?
  bool Matches(TermId e, const Expression& expr) const;

  /// Match set of a conjunction (intersection of part match sets; empty
  /// expression matches nothing by convention — ⊤ is never evaluated).
  MatchSet Evaluate(const Expression& expr);

  /// RE test (paper §2.2.2): matches(expr) == targets. Early-exits as soon
  /// as a non-target match or a missing target is detected.
  bool IsReferringExpression(const Expression& expr,
                             const MatchSet& targets);

  const KnowledgeBase& kb() const { return *kb_; }

  EvaluatorStats stats() const;
  void ResetStats();

 private:
  std::shared_ptr<const MatchSet> ComputeMatch(
      const SubgraphExpression& rho) const;

  const KnowledgeBase* kb_;
  std::shared_ptr<EvalCache> cache_;
  mutable std::atomic<uint64_t> subgraph_evaluations_{0};
  mutable std::atomic<uint64_t> membership_tests_{0};
};

}  // namespace remi
