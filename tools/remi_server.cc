// remi_server — the TCP serving front end.
//
//   remi_server <kb> [--port 7411] [--mode epoll|threads] [--threads N]
//               [--max-inflight 4] [--max-queued 16]
//               [--inverse-fraction 0.01] [--catalog catalog.json]
//               [--tenant-max-inflight 0] [--tenant-max-queued 0]
//
// <kb> is any format KbSpec understands (.nt / .ttl / .rkf / .rkf2; RKF2
// snapshots open zero-copy). The default --mode epoll serves both wire
// protocols on one port, autodetected per connection: the length-prefixed
// binary framing (request-id multiplexed, out-of-order responses; see
// src/service/frame_codec.h) and the newline-delimited-JSON debug
// protocol. --mode threads is the thread-per-connection NDJSON-only
// reference server. Example debug session:
//
//   $ remi_server tests/data/smoke.nt --port 7411 &
//   $ printf '{"op":"mine","targets":["Berlin"]}\n' | nc 127.0.0.1 7411
//   {"status":"OK","found":true,...}
//
// The server runs until SIGINT/SIGTERM, then drains gracefully: it stops
// accepting, lets requests already on the wire finish and flush (up to
// --drain-grace seconds), then cancels stragglers and exits. The KB can
// be hot-swapped at runtime with {"op":"reload","path":...} (or
// `remi_cli reload`) — see README "Hot-swap & operational runbook".
//
// Multi-tenant: <kb> becomes the unnamed default tenant. More named KBs
// come from --catalog (a JSON file of lazily opened entries; see README
// "Multi-tenant serving") or are attached at runtime via `remi_cli
// attach`. --tenant-max-inflight/--tenant-max-queued set the default
// per-tenant admission quota (0 = tenants share only the global limits).

#include <csignal>
#include <cstdio>

#include <atomic>
#include <chrono>
#include <thread>

#include <string>

#include "service/event_server.h"
#include "service/line_server.h"
#include "service/service.h"
#include "util/flags.h"

namespace {

std::atomic<bool> g_shutdown{false};

void HandleSignal(int) { g_shutdown.store(true); }

}  // namespace

int main(int argc, char** argv) {
  remi::Flags flags;
  flags.DefineInt("port", 7411, "TCP port (0 = ephemeral, printed on start)");
  flags.DefineString("bind", "127.0.0.1", "IPv4 address to bind");
  flags.DefineInt("threads", 1, "mining threads (>1 = P-REMI)");
  flags.DefineInt("max-inflight", 4,
                  "concurrent requests before callers queue (0 = unlimited)");
  flags.DefineInt("max-queued", 16,
                  "queued requests before ResourceExhausted");
  flags.DefineString("catalog", "",
                     "KB catalog JSON file; entries are registered as "
                     "named tenants and open lazily on first request");
  flags.DefineInt("tenant-max-inflight", 0,
                  "default per-tenant in-flight quota (0 = unlimited)");
  flags.DefineInt("tenant-max-queued", 0,
                  "default per-tenant queue quota (0 = unlimited)");
  flags.DefineDouble("inverse-fraction", 0.01,
                     "inverse materialization fraction (paper: 0.01)");
  flags.DefineDouble("drain-grace", 30.0,
                     "seconds to let in-flight requests finish on "
                     "SIGTERM/SIGINT before cancelling them");
  flags.DefineString("mode", "epoll",
                     "serving core: 'epoll' (event loop, binary frames + "
                     "NDJSON autodetected) or 'threads' "
                     "(thread-per-connection, NDJSON only)");
  flags.DefineInt("dispatch-threads", 4,
                  "epoll mode: worker threads executing requests");
  flags.DefineInt("max-write-buffer", 4 << 20,
                  "epoll mode: per-connection write-buffer bytes before "
                  "the connection stops being read (backpressure)");
  flags.DefineInt("idle-timeout-ms", 0,
                  "epoll mode: reap connections with no queued/in-flight "
                  "work and no read/write progress for this long "
                  "(0 = never; also bounds slow-loris trickles)");
  flags.DefineInt("write-stall-timeout-ms", 0,
                  "epoll mode: reap connections whose peer accepts no "
                  "response bytes for this long while bytes are owed "
                  "(0 = never)");
  flags.DefineInt("handshake-timeout-ms", 0,
                  "epoll mode: reap connections that send no first byte "
                  "(protocol sniff) within this bound (0 = never)");
  flags.DefineDouble("brownout-p99-ms", 0.0,
                     "enter brownout (tighten the admission queue) when "
                     "the p99 queue wait exceeds this many milliseconds; "
                     "exits below half the bound (0 = disabled)");
  flags.DefineDouble("brownout-queue-fraction", 0.25,
                     "fraction of --max-queued admitted while brownout "
                     "is active (floored at 1 slot)");
  if (auto status = flags.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  if (flags.positional().size() != 1) {
    std::printf("usage: remi_server <kb> [flags]\n\n%s",
                flags.Help().c_str());
    return 1;
  }

  remi::KbSpec spec;
  spec.path = flags.positional()[0];
  spec.kb.inverse_top_fraction = flags.GetDouble("inverse-fraction");

  remi::ServiceOptions options;
  options.mining.num_threads = static_cast<int>(flags.GetInt("threads"));
  options.max_in_flight = static_cast<size_t>(flags.GetInt("max-inflight"));
  options.max_queued = static_cast<size_t>(flags.GetInt("max-queued"));
  options.tenant_max_in_flight =
      static_cast<size_t>(flags.GetInt("tenant-max-inflight"));
  options.tenant_max_queued =
      static_cast<size_t>(flags.GetInt("tenant-max-queued"));
  options.brownout_p99_queue_wait_ms = flags.GetDouble("brownout-p99-ms");
  options.brownout_queue_fraction =
      flags.GetDouble("brownout-queue-fraction");

  auto service = remi::Service::Open(spec, options);
  if (!service.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  if (const std::string catalog = flags.GetString("catalog");
      !catalog.empty()) {
    auto registered = (*service)->LoadCatalogFile(catalog);
    if (!registered.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   registered.status().ToString().c_str());
      return 1;
    }
    std::printf("catalog %s: %zu kb(s) registered (lazy)\n",
                catalog.c_str(), *registered);
  }
  if ((*service)->parse_skipped_lines() > 0) {
    std::fprintf(stderr, "warning: skipped %zu malformed lines\n",
                 (*service)->parse_skipped_lines());
  }
  std::printf("loaded %s: %zu facts, %zu entities\n", spec.path.c_str(),
              (*service)->kb().NumFacts(), (*service)->kb().NumEntities());

  const std::string mode = flags.GetString("mode");
  if (mode != "epoll" && mode != "threads") {
    std::fprintf(stderr, "error: --mode must be 'epoll' or 'threads'\n");
    return 1;
  }

  // Both serving cores share the start / wait-for-signal / drain
  // lifecycle; only construction differs.
  remi::LineServer line_server(
      service->get(), [&] {
        remi::LineServerOptions o;
        o.bind_address = flags.GetString("bind");
        o.port = static_cast<int>(flags.GetInt("port"));
        return o;
      }());
  remi::EventServer event_server(
      service->get(), [&] {
        remi::EventServerOptions o;
        o.bind_address = flags.GetString("bind");
        o.port = static_cast<int>(flags.GetInt("port"));
        o.dispatch_threads =
            static_cast<size_t>(flags.GetInt("dispatch-threads"));
        o.max_write_buffer_bytes =
            static_cast<size_t>(flags.GetInt("max-write-buffer"));
        o.idle_timeout_ms = static_cast<int>(flags.GetInt("idle-timeout-ms"));
        o.write_stall_timeout_ms =
            static_cast<int>(flags.GetInt("write-stall-timeout-ms"));
        o.handshake_timeout_ms =
            static_cast<int>(flags.GetInt("handshake-timeout-ms"));
        return o;
      }());
  const bool epoll_mode = mode == "epoll";
  if (auto status = epoll_mode ? event_server.Start() : line_server.Start();
      !status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  const int port = epoll_mode ? event_server.port() : line_server.port();
  std::printf("remi_server (%s) listening on %s:%d\n", mode.c_str(),
              flags.GetString("bind").c_str(), port);
  std::fflush(stdout);

  // A client that disconnects mid-response must surface as a send()
  // error on that one connection, never as a process-killing SIGPIPE.
  // send() already passes MSG_NOSIGNAL; this covers any other fd writes.
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_shutdown.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  const double grace = flags.GetDouble("drain-grace");
  std::printf("draining (grace %.1fs)\n", grace);
  std::fflush(stdout);
  const bool drained =
      epoll_mode ? event_server.Drain(grace) : line_server.Drain(grace);
  if (!epoll_mode) line_server.Stop();
  std::printf(drained ? "drained cleanly\n"
                      : "drain grace expired; cancelled stragglers\n");
  return 0;
}
