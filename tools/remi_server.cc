// remi_server — the newline-delimited-JSON-over-TCP serving front end.
//
//   remi_server <kb> [--port 7411] [--threads N] [--max-inflight 4]
//               [--max-queued 16] [--inverse-fraction 0.01]
//
// <kb> is any format KbSpec understands (.nt / .ttl / .rkf / .rkf2; RKF2
// snapshots open zero-copy). One request per line, one response per line;
// see src/service/json_codec.h for the protocol. Example session:
//
//   $ remi_server tests/data/smoke.nt --port 7411 &
//   $ printf '{"op":"mine","targets":["Berlin"]}\n' | nc 127.0.0.1 7411
//   {"status":"OK","found":true,...}
//
// The server runs until SIGINT/SIGTERM, then drains gracefully: it stops
// accepting, lets requests already on the wire finish and flush (up to
// --drain-grace seconds), then cancels stragglers and exits. The KB can
// be hot-swapped at runtime with {"op":"reload","path":...} (or
// `remi_cli reload`) — see README "Hot-swap & operational runbook".

#include <csignal>
#include <cstdio>

#include <atomic>
#include <chrono>
#include <thread>

#include "service/line_server.h"
#include "service/service.h"
#include "util/flags.h"

namespace {

std::atomic<bool> g_shutdown{false};

void HandleSignal(int) { g_shutdown.store(true); }

}  // namespace

int main(int argc, char** argv) {
  remi::Flags flags;
  flags.DefineInt("port", 7411, "TCP port (0 = ephemeral, printed on start)");
  flags.DefineString("bind", "127.0.0.1", "IPv4 address to bind");
  flags.DefineInt("threads", 1, "mining threads (>1 = P-REMI)");
  flags.DefineInt("max-inflight", 4,
                  "concurrent requests before callers queue (0 = unlimited)");
  flags.DefineInt("max-queued", 16,
                  "queued requests before ResourceExhausted");
  flags.DefineDouble("inverse-fraction", 0.01,
                     "inverse materialization fraction (paper: 0.01)");
  flags.DefineDouble("drain-grace", 30.0,
                     "seconds to let in-flight requests finish on "
                     "SIGTERM/SIGINT before cancelling them");
  if (auto status = flags.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  if (flags.positional().size() != 1) {
    std::printf("usage: remi_server <kb> [flags]\n\n%s",
                flags.Help().c_str());
    return 1;
  }

  remi::KbSpec spec;
  spec.path = flags.positional()[0];
  spec.kb.inverse_top_fraction = flags.GetDouble("inverse-fraction");

  remi::ServiceOptions options;
  options.mining.num_threads = static_cast<int>(flags.GetInt("threads"));
  options.max_in_flight = static_cast<size_t>(flags.GetInt("max-inflight"));
  options.max_queued = static_cast<size_t>(flags.GetInt("max-queued"));

  auto service = remi::Service::Open(spec, options);
  if (!service.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  if ((*service)->parse_skipped_lines() > 0) {
    std::fprintf(stderr, "warning: skipped %zu malformed lines\n",
                 (*service)->parse_skipped_lines());
  }
  std::printf("loaded %s: %zu facts, %zu entities\n", spec.path.c_str(),
              (*service)->kb().NumFacts(), (*service)->kb().NumEntities());

  remi::LineServerOptions server_options;
  server_options.bind_address = flags.GetString("bind");
  server_options.port = static_cast<int>(flags.GetInt("port"));
  remi::LineServer server(service->get(), server_options);
  if (auto status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("remi_server listening on %s:%d\n",
              server_options.bind_address.c_str(), server.port());
  std::fflush(stdout);

  // A client that disconnects mid-response must surface as a send()
  // error on that one connection, never as a process-killing SIGPIPE.
  // send() already passes MSG_NOSIGNAL; this covers any other fd writes.
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_shutdown.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  const double grace = flags.GetDouble("drain-grace");
  std::printf("draining (grace %.1fs)\n", grace);
  std::fflush(stdout);
  const bool drained = server.Drain(grace);
  server.Stop();
  std::printf(drained ? "drained cleanly\n"
                      : "drain grace expired; cancelled stragglers\n");
  return 0;
}
