// remi — command-line front end to the library, built on remi::Service.
//
// Subcommands:
//   remi stats <kb>                          KB statistics
//   remi convert <in> <out>                  N-Triples / RKF / RKF2 conversion
//   remi snapshot <in> <out.rkf2>            build a KB, save an RKF2 snapshot
//   remi mine <kb> --targets <iri[,iri...]>  mine the most intuitive RE
//   remi mine <kb> --batch <file>            mine many sets (one per line)
//   remi summarize <kb> --entity <iri>       top-k intuitive atoms
//   remi reload <path> --port <p> [--kb n]   hot-swap a running server's KB
//   remi counters --port <p> [--kb n]        live ServiceCounters of a server
//   remi attach <name> <path> --port <p>     attach a named KB to a server
//   remi detach <name> --port <p>            detach a named KB
//   remi list --port <p>                     list a server's KBs
//
// `reload`, `counters`, `attach`, `detach`, and `list` are admin clients,
// not local operations: they connect to a running remi_server
// (--host/--port). `counters` speaks the binary frame protocol (so it
// doubles as a smoke test for it against an epoll-mode server); the
// others speak NDJSON by default and the binary framing with --binary.
// The reload/attach paths are resolved by the *server* process. Exit 0
// when the server accepted the operation; nonzero otherwise (a rejected
// reload keeps the prior generation serving — fail closed).
//
// Multi-tenant admin: `reload --kb <name>` swaps one named tenant;
// `counters --kb <name>` prints that tenant's counter slice. `attach`
// opens the KB before replying (--lazy registers it as a catalog entry
// instead); --kb-max-inflight/--kb-max-queued set its admission quota.
//
// <kb> is anything KbSpec understands: N-Triples (.nt), Turtle (.ttl),
// RKF (.rkf), or an RKF2 snapshot (.rkf2; opened zero-copy, no rebuild) —
// the format is sniffed by magic bytes and extension inside the Service.
// Targets accept full IRIs or unique IRI suffixes (e.g. "Paris" matches
// <http://dbpedia.org/resource/Paris> if unambiguous). A --batch file
// holds one comma-separated target set per line ('#' starts a comment);
// with --threads N the sets are mined concurrently on the service's
// shared pool. --timeout sets the per-request deadline: an expired
// request reports "timed out" instead of running unbounded.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "rdf/ntriples.h"
#include "rdf/rkf.h"
#include "service/frame_codec.h"
#include "service/service.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using remi::Result;
using remi::Status;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Opens the serving façade over `path`, applying the CLI's KB and mining
/// flags. Every subcommand except `convert` goes through this.
Result<std::unique_ptr<remi::Service>> OpenService(
    const std::string& path, const remi::Flags& flags) {
  remi::KbSpec spec;
  spec.path = path;
  spec.kb.inverse_top_fraction = flags.GetDouble("inverse-fraction");

  remi::ServiceOptions options;
  options.mining.num_threads = static_cast<int>(flags.GetInt("threads"));
  // One caller: no need for an admission queue.
  options.max_in_flight = 0;

  auto service = remi::Service::Open(spec, options);
  if (service.ok() && (*service)->parse_skipped_lines() > 0) {
    std::fprintf(stderr, "warning: skipped %zu malformed lines\n",
                 (*service)->parse_skipped_lines());
  }
  if (service.ok() && remi::EndsWith(path, ".rkf2") &&
      flags.WasSet("inverse-fraction") &&
      (*service)->kb().options().inverse_top_fraction !=
          flags.GetDouble("inverse-fraction")) {
    std::fprintf(stderr,
                 "note: snapshot was built with --inverse-fraction %g; "
                 "the flag is ignored for .rkf2 inputs\n",
                 (*service)->kb().options().inverse_top_fraction);
  }
  return service;
}

/// Shared request knobs: cost metric, language bias, deadline.
void ApplyRequestFlags(const remi::Flags& flags,
                       std::optional<remi::CostModelOptions>* cost,
                       std::optional<remi::EnumeratorOptions>* enumerator,
                       remi::RequestControl* control) {
  if (flags.GetString("metric") == "pr") {
    remi::CostModelOptions options;
    options.metric = remi::ProminenceMetric::kPageRank;
    *cost = options;
  }
  if (flags.GetBool("standard")) {
    remi::EnumeratorOptions options;
    options.extended_language = false;
    *enumerator = options;
  }
  control->deadline_seconds = flags.GetDouble("timeout");
}

int CmdStats(const std::string& path, const remi::Flags& flags) {
  auto service = OpenService(path, flags);
  if (!service.ok()) return Fail(service.status());
  const remi::KnowledgeBase& kb = (*service)->kb();
  std::printf("facts        : %zu (%zu base + %zu inverse)\n", kb.NumFacts(),
              kb.NumBaseFacts(), kb.NumFacts() - kb.NumBaseFacts());
  std::printf("entities     : %zu\n", kb.NumEntities());
  std::printf("predicates   : %zu\n", kb.NumPredicates());
  std::printf("classes      : %zu\n", kb.classes().size());
  std::printf("dictionary   : %zu terms\n", kb.dict().size());
  std::printf("top entities :");
  const auto& order = kb.EntitiesByProminence();
  for (size_t i = 0; i < order.size() && i < 5; ++i) {
    std::printf(" %s(%llu)", kb.Label(order[i]).c_str(),
                static_cast<unsigned long long>(
                    kb.EntityFrequency(order[i])));
  }
  std::printf("\n");
  return 0;
}

/// Builds a KB from `in_path` and writes it as an RKF2 snapshot.
int CmdSnapshot(const std::string& in_path, const std::string& out_path,
                const remi::Flags& flags) {
  auto service = OpenService(in_path, flags);
  if (!service.ok()) return Fail(service.status());
  const remi::KnowledgeBase& kb = (*service)->kb();
  remi::Timer timer;
  if (auto status = kb.SaveSnapshot(out_path); !status.ok()) {
    return Fail(remi::WithMessagePrefix(status, out_path));
  }
  std::printf("wrote %s (%zu facts, %zu entities, %s)\n", out_path.c_str(),
              kb.NumFacts(), kb.NumEntities(),
              remi::FormatSeconds(timer.ElapsedSeconds()).c_str());
  return 0;
}

/// Format conversion stays below the Service: it moves raw triples
/// between containers without ever serving requests.
int CmdConvert(const std::string& in_path, const std::string& out_path,
               const remi::Flags& flags) {
  if (remi::EndsWith(out_path, ".rkf2")) {
    return CmdSnapshot(in_path, out_path, flags);
  }
  remi::Dictionary dict;
  std::vector<remi::Triple> triples;
  if (remi::EndsWith(in_path, ".rkf2")) {
    // A snapshot stores the *built* KB; recover the base facts by
    // dropping the materialized inverse-predicate triples.
    auto kb = remi::KnowledgeBase::OpenSnapshot(in_path);
    if (!kb.ok()) return Fail(remi::WithMessagePrefix(kb.status(), in_path));
    // Deep-copy: the snapshot's dictionary is a view into the mapped
    // file, which dies with `kb` at the end of this block.
    dict = kb->dict().OwnedCopy();
    for (const remi::Triple& t : kb->store().spo()) {
      if (!kb->IsInversePredicate(t.p)) triples.push_back(t);
    }
  } else if (remi::EndsWith(in_path, ".rkf")) {
    auto data = remi::ReadRkfFile(in_path);
    if (!data.ok()) return Fail(remi::WithMessagePrefix(data.status(), in_path));
    dict = std::move(data->dict);
    triples = std::move(data->triples);
  } else {
    remi::NTriplesParser parser(&dict, /*lenient=*/true);
    auto parsed = parser.ParseFile(in_path);
    if (!parsed.ok()) return Fail(remi::WithMessagePrefix(parsed.status(), in_path));
    triples = std::move(*parsed);
  }
  const size_t num_triples = triples.size();
  if (remi::EndsWith(out_path, ".rkf")) {
    auto status = remi::WriteRkfFile(dict, std::move(triples), out_path);
    if (!status.ok()) return Fail(remi::WithMessagePrefix(status, out_path));
  } else {
    const std::string doc = remi::WriteNTriples(dict, triples);
    FILE* f = std::fopen(out_path.c_str(), "wb");
    if (f == nullptr) return Fail(Status::IoError("cannot open " + out_path));
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
  }
  std::printf("wrote %s (%zu triples)\n", out_path.c_str(), num_triples);
  return 0;
}

/// Parses a batch file into TargetSpecs: one comma-separated target set
/// per line; empty lines and '#' comments are skipped. The original line
/// text rides along for reporting.
Result<std::vector<std::pair<std::string, remi::TargetSpec>>> LoadBatchFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open batch file " + path);
  std::vector<std::pair<std::string, remi::TargetSpec>> sets;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed(remi::TrimWhitespace(line));
    if (trimmed.empty() || trimmed[0] == '#') continue;
    remi::TargetSpec spec;
    for (const std::string& name : remi::SplitString(trimmed, ',')) {
      const std::string entity(remi::TrimWhitespace(name));
      if (!entity.empty()) spec.names.push_back(entity);
    }
    if (spec.names.empty()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": no targets");
    }
    sets.emplace_back(trimmed, std::move(spec));
  }
  return sets;
}

int CmdMineBatch(remi::Service* service, const remi::Flags& flags) {
  auto batch = LoadBatchFile(flags.GetString("batch"));
  if (!batch.ok()) return Fail(batch.status());
  if (batch->empty()) {
    return Fail(Status::InvalidArgument("batch file contains no target sets"));
  }

  remi::BatchMineRequest request;
  for (const auto& [line, spec] : *batch) {
    request.target_sets.push_back(spec);
  }
  request.max_exceptions = static_cast<size_t>(flags.GetInt("exceptions"));
  ApplyRequestFlags(flags, &request.cost, &request.enumerator,
                    &request.control);

  remi::Timer timer;
  auto response = service->BatchMine(request);
  if (!response.ok()) return Fail(response.status());
  const double elapsed = timer.ElapsedSeconds();

  size_t found = 0;
  for (size_t i = 0; i < response->results.size(); ++i) {
    const remi::MineResponse& r = response->results[i];
    if (r.found) {
      ++found;
      std::printf("%-40s %.3f bits  %s\n", (*batch)[i].first.c_str(), r.cost,
                  r.expression_text.c_str());
    } else {
      std::printf("%-40s %s\n", (*batch)[i].first.c_str(),
                  r.status.IsDeadlineExceeded() ? "timed out"
                                                : "no referring expression");
    }
  }
  std::printf("batch      : %zu/%zu sets with an RE, %lld thread(s), %s "
              "(%.1f sets/s)\n",
              found, response->results.size(),
              static_cast<long long>(flags.GetInt("threads")),
              remi::FormatSeconds(elapsed).c_str(),
              elapsed > 0
                  ? static_cast<double>(response->results.size()) / elapsed
                  : 0.0);
  // Same convention as single-set mine: exit 2 when no referring
  // expression was found (here: for any set in the batch).
  return found > 0 ? 0 : 2;
}

int CmdMine(const std::string& path, const remi::Flags& flags) {
  auto service = OpenService(path, flags);
  if (!service.ok()) return Fail(service.status());

  if (!flags.GetString("batch").empty()) {
    return CmdMineBatch(service->get(), flags);
  }

  remi::MineRequest request;
  for (const std::string& name :
       remi::SplitString(flags.GetString("targets"), ',')) {
    if (!name.empty()) request.targets.names.push_back(name);
  }
  if (request.targets.names.empty()) {
    return Fail(Status::InvalidArgument("--targets is required"));
  }
  request.max_exceptions = static_cast<size_t>(flags.GetInt("exceptions"));
  request.verbalize = true;
  ApplyRequestFlags(flags, &request.cost, &request.enumerator,
                    &request.control);

  remi::Timer timer;
  auto response = (*service)->Mine(request);
  if (!response.ok()) return Fail(response.status());
  if (!response->found) {
    std::printf("no referring expression exists for this set%s\n",
                response->status.IsDeadlineExceeded() ? " (timed out)" : "");
    return 2;
  }
  std::printf("expression : %s\n", response->expression_text.c_str());
  std::printf("complexity : %.3f bits (Ĉ%s)\n", response->cost,
              flags.GetString("metric").c_str());
  std::printf("verbalized : %s\n", response->verbalization.c_str());
  if (!response->exception_labels.empty()) {
    std::printf("exceptions :");
    for (const std::string& e : response->exception_labels) {
      std::printf(" %s", e.c_str());
    }
    std::printf("\n");
  }
  std::printf("search     : |G|=%zu, %llu nodes, %s\n",
              response->stats.num_common_subgraphs,
              static_cast<unsigned long long>(response->stats.nodes_visited),
              remi::FormatSeconds(timer.ElapsedSeconds()).c_str());
  std::printf("kernel     : %llu count-only, %llu frame reuses, "
              "%zu pinned KiB, %llu search cache lookups\n",
              static_cast<unsigned long long>(
                  response->stats.count_only_prunes),
              static_cast<unsigned long long>(
                  response->stats.arena_frames_reused),
              (response->stats.pinned_queue_bytes +
               response->stats.dense_twin_bytes) / 1024,
              static_cast<unsigned long long>(
                  response->stats.search_cache_lookups));
  return 0;
}

int CmdSummarize(const std::string& path, const remi::Flags& flags) {
  auto service = OpenService(path, flags);
  if (!service.ok()) return Fail(service.status());

  remi::SummarizeRequest request;
  request.entity.names.push_back(flags.GetString("entity"));
  request.k = static_cast<size_t>(flags.GetInt("k"));
  request.metric = flags.GetString("metric") == "pr"
                       ? remi::ProminenceMetric::kPageRank
                       : remi::ProminenceMetric::kFrequency;
  request.control.deadline_seconds = flags.GetDouble("timeout");

  auto response = (*service)->Summarize(request);
  if (!response.ok()) return Fail(response.status());
  if (!response->status.ok()) {
    std::printf("summary of %s interrupted (%s)\n",
                response->entity_label.c_str(),
                response->status.ToString().c_str());
    return 2;
  }
  std::printf("summary of %s:\n", response->entity_label.c_str());
  for (const std::string& item : response->item_labels) {
    std::printf("  %s\n", item.c_str());
  }
  return 0;
}

/// Blocking TCP connect; the caller owns (and closes) the fd.
Result<int> ConnectTo(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host address '" + host + "'");
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr),
              sizeof(addr)) != 0) {
    const Status status = Status::IoError(
        "connect " + host + ":" + std::to_string(port) + ": " +
        std::strerror(errno));
    close(fd);
    return status;
  }
  return fd;
}

/// Full-write loop; MSG_NOSIGNAL so a server that died mid-send surfaces
/// as EPIPE, not a fatal SIGPIPE.
Status SendAllTo(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// One blocking line-protocol round trip against a running remi_server:
/// connect, send `request` + '\n', read until the response newline.
Result<std::string> LineRoundTrip(const std::string& host, int port,
                                  const std::string& request) {
  auto fd = ConnectTo(host, port);
  if (!fd.ok()) return fd.status();
  if (auto status = SendAllTo(*fd, request + "\n"); !status.ok()) {
    close(*fd);
    return status;
  }
  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t n = recv(*fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(chunk, static_cast<size_t>(n));
    const size_t newline = response.find('\n');
    if (newline != std::string::npos) {
      close(*fd);
      return response.substr(0, newline);
    }
  }
  close(*fd);
  return Status::IoError("connection closed before a response line");
}

/// One binary-frame round trip: connect, send `payload` under `verb`,
/// decode response frames until ours (matched by request id) arrives, and
/// return its payload — the same JSON document the NDJSON protocol would
/// produce. Requires an epoll-mode server (--mode threads speaks only
/// NDJSON and will reject the frame).
Result<std::string> FrameRoundTrip(const std::string& host, int port,
                                   remi::FrameVerb verb,
                                   const std::string& payload) {
  auto fd = ConnectTo(host, port);
  if (!fd.ok()) return fd.status();
  constexpr uint64_t kRequestId = 1;
  std::string wire;
  remi::AppendFrame(static_cast<uint8_t>(verb), kRequestId, payload, &wire);
  if (auto status = SendAllTo(*fd, wire); !status.ok()) {
    close(*fd);
    return status;
  }
  remi::FrameDecoder decoder(/*max_payload_bytes=*/64u << 20);
  char chunk[4096];
  for (;;) {
    const ssize_t n = recv(*fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    decoder.Feed(std::string_view(chunk, static_cast<size_t>(n)));
    remi::FrameView frame;
    for (;;) {
      const auto result = decoder.Next(&frame);
      if (result == remi::FrameDecoder::Result::kNeedMore) break;
      if (result == remi::FrameDecoder::Result::kError) {
        close(*fd);
        return decoder.status();
      }
      if (frame.request_id == kRequestId || frame.verb == 0) {
        // Ours, or a stream-level error frame from the server.
        const std::string response(frame.payload);
        close(*fd);
        return response;
      }
    }
  }
  close(*fd);
  return Status::IoError("connection closed before a response frame");
}

/// Sends one admin request (NDJSON by default, one binary frame with
/// --binary), prints the server's response document, and maps it to an
/// exit code: 0 when the server reported "status":"OK", 2 otherwise
/// (fail closed on the client too — e.g. a rejected reload means the
/// server kept its prior generation; tell the operator via the exit
/// code).
int AdminRoundTrip(const remi::Flags& flags, remi::FrameVerb verb,
                   const remi::JsonValue& request) {
  const std::string host = flags.GetString("host");
  const int port = static_cast<int>(flags.GetInt("port"));
  const int max_retries = static_cast<int>(flags.GetInt("max-retries"));
  // Cheap jitter state: decorrelates concurrent CLI invocations so a
  // fleet of retrying clients doesn't re-converge into one thundering
  // herd at hint × 2^k boundaries.
  uint64_t jitter =
      static_cast<uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count()) |
      1;
  for (int attempt = 0;; ++attempt) {
    auto response = flags.GetBool("binary")
                        ? FrameRoundTrip(host, port, verb, request.Dump())
                        : LineRoundTrip(host, port, request.Dump());
    if (!response.ok()) return Fail(response.status());
    auto parsed = remi::ParseJson(*response);
    if (!parsed.ok() || !parsed->is_object()) {
      return Fail(Status::Internal("unparseable server response: " +
                                   *response));
    }
    const remi::JsonValue* status = parsed->Find("status");
    const std::string code =
        status != nullptr && status->is_string() ? status->AsString() : "";
    if (code == "ResourceExhausted" && attempt < max_retries) {
      // The server's retry_after_ms hint is scaled off its live queue;
      // trust it as the base and back off exponentially on repeated
      // rejections, capped at 10 s.
      uint64_t hint = 100;
      const remi::JsonValue* after = parsed->Find("retry_after_ms");
      if (after != nullptr && after->is_number() && after->AsNumber() >= 1) {
        hint = static_cast<uint64_t>(after->AsNumber());
      }
      constexpr uint64_t kMaxDelayMs = 10000;
      uint64_t delay =
          std::min(kMaxDelayMs, hint << std::min(attempt, 10));
      // xorshift64 step; jitter the delay into [0.75, 1.25).
      jitter ^= jitter << 13;
      jitter ^= jitter >> 7;
      jitter ^= jitter << 17;
      delay = delay * 3 / 4 + (jitter % (std::max<uint64_t>(delay, 2) / 2));
      std::fprintf(stderr,
                   "server busy; retrying in %llu ms (attempt %d of %d)\n",
                   static_cast<unsigned long long>(delay), attempt + 1,
                   max_retries);
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      continue;
    }
    std::printf("%s\n", response->c_str());
    return code == "OK" ? 0 : 2;
  }
}

int CmdReload(const std::string& path, const remi::Flags& flags) {
  remi::JsonValue request = remi::JsonValue::Object();
  request.Set("op", remi::JsonValue::String("reload"));
  if (flags.WasSet("kb")) {
    request.Set("kb", remi::JsonValue::String(flags.GetString("kb")));
  }
  request.Set("path", remi::JsonValue::String(path));
  request.Set("lenient", remi::JsonValue::Bool(!flags.GetBool("strict")));
  return AdminRoundTrip(flags, remi::FrameVerb::kReload, request);
}

int CmdAttach(const std::string& name, const std::string& path,
              const remi::Flags& flags) {
  remi::JsonValue request = remi::JsonValue::Object();
  request.Set("op", remi::JsonValue::String("attach"));
  request.Set("kb", remi::JsonValue::String(name));
  request.Set("path", remi::JsonValue::String(path));
  request.Set("lenient", remi::JsonValue::Bool(!flags.GetBool("strict")));
  if (flags.GetBool("lazy")) {
    request.Set("lazy", remi::JsonValue::Bool(true));
  }
  if (flags.WasSet("kb-max-inflight")) {
    request.Set("max_in_flight",
                remi::JsonValue::Number(static_cast<double>(
                    flags.GetInt("kb-max-inflight"))));
  }
  if (flags.WasSet("kb-max-queued")) {
    request.Set("max_queued",
                remi::JsonValue::Number(static_cast<double>(
                    flags.GetInt("kb-max-queued"))));
  }
  return AdminRoundTrip(flags, remi::FrameVerb::kAttachKb, request);
}

int CmdDetach(const std::string& name, const remi::Flags& flags) {
  remi::JsonValue request = remi::JsonValue::Object();
  request.Set("op", remi::JsonValue::String("detach"));
  request.Set("kb", remi::JsonValue::String(name));
  return AdminRoundTrip(flags, remi::FrameVerb::kDetachKb, request);
}

int CmdListKbs(const remi::Flags& flags) {
  remi::JsonValue request = remi::JsonValue::Object();
  request.Set("op", remi::JsonValue::String("list_kbs"));
  return AdminRoundTrip(flags, remi::FrameVerb::kListKbs, request);
}

/// Fetches a running server's live ServiceCounters (admission outcomes,
/// transport health, aggregated mining stats) — or one tenant's slice
/// with --kb — over the binary frame protocol and prints the JSON
/// document.
int CmdCounters(const remi::Flags& flags) {
  std::string payload = "{}";
  if (flags.WasSet("kb")) {
    remi::JsonValue request = remi::JsonValue::Object();
    request.Set("kb", remi::JsonValue::String(flags.GetString("kb")));
    payload = request.Dump();
  }
  auto response = FrameRoundTrip(flags.GetString("host"),
                                 static_cast<int>(flags.GetInt("port")),
                                 remi::FrameVerb::kCounters, payload);
  if (!response.ok()) return Fail(response.status());
  std::printf("%s\n", response->c_str());
  auto parsed = remi::ParseJson(*response);
  if (!parsed.ok() || !parsed->is_object()) {
    return Fail(Status::Internal("unparseable server response"));
  }
  const remi::JsonValue* status = parsed->Find("status");
  return (status != nullptr && status->is_string() &&
          status->AsString() == "OK")
             ? 0
             : 2;
}

}  // namespace

int main(int argc, char** argv) {
  remi::Flags flags;
  flags.DefineString("targets", "", "comma-separated entities (mine)");
  flags.DefineString("batch", "",
                     "file with one target set per line (mine)");
  flags.DefineString("entity", "", "entity to summarize (summarize)");
  flags.DefineString("metric", "fr", "prominence metric: fr | pr");
  flags.DefineInt("threads", 1, "worker threads (>1 = P-REMI)");
  flags.DefineInt("k", 5, "summary size (summarize)");
  flags.DefineInt("exceptions", 0, "allowed non-target matches (mine)");
  flags.DefineBool("standard", false,
                   "restrict mining to the standard (atom-only) language");
  flags.DefineDouble("timeout", 0.0, "per-request deadline in seconds");
  flags.DefineDouble("inverse-fraction", 0.01,
                     "inverse materialization fraction (paper: 0.01)");
  flags.DefineString("host", "127.0.0.1", "server address (reload/counters)");
  flags.DefineInt("port", 7411, "server port (reload/counters)");
  flags.DefineBool("strict", false,
                   "reload: fail on malformed N-Triples lines instead of "
                   "skipping them");
  flags.DefineBool("binary", false,
                   "admin commands: use the binary frame protocol instead "
                   "of NDJSON (requires an epoll-mode server)");
  flags.DefineString("kb", "",
                     "reload/counters: the named KB to target (default: "
                     "the server's default tenant)");
  flags.DefineBool("lazy", false,
                   "attach: register as a catalog entry (opened on first "
                   "request) instead of opening the KB now");
  flags.DefineInt("kb-max-inflight", 0,
                  "attach: the new tenant's in-flight quota (0 = unlimited)");
  flags.DefineInt("kb-max-queued", 0,
                  "attach: the new tenant's queue quota (0 = unlimited)");
  flags.DefineInt("max-retries", 0,
                  "admin commands: on ResourceExhausted, honor the "
                  "server's retry_after_ms hint and retry up to this many "
                  "times (capped exponential backoff with jitter)");
  if (auto status = flags.Parse(argc, argv); !status.ok()) {
    return Fail(status);
  }
  const auto& args = flags.positional();
  if (args.empty()) {
    std::printf(
        "usage: remi <stats|convert|snapshot|mine|summarize|reload|counters"
        "|attach|detach|list> <kb> [args]\n\n%s",
        flags.Help().c_str());
    return 1;
  }
  const std::string& command = args[0];
  if (command == "stats" && args.size() == 2) {
    return CmdStats(args[1], flags);
  }
  if (command == "convert" && args.size() == 3) {
    return CmdConvert(args[1], args[2], flags);
  }
  if (command == "snapshot" && args.size() == 3) {
    return CmdSnapshot(args[1], args[2], flags);
  }
  if (command == "mine" && args.size() == 2) {
    return CmdMine(args[1], flags);
  }
  if (command == "summarize" && args.size() == 2) {
    return CmdSummarize(args[1], flags);
  }
  if (command == "reload" && args.size() == 2) {
    return CmdReload(args[1], flags);
  }
  if (command == "counters" && args.size() == 1) {
    return CmdCounters(flags);
  }
  if (command == "attach" && args.size() == 3) {
    return CmdAttach(args[1], args[2], flags);
  }
  if (command == "detach" && args.size() == 2) {
    return CmdDetach(args[1], flags);
  }
  if (command == "list" && args.size() == 1) {
    return CmdListKbs(flags);
  }
  std::fprintf(stderr, "unknown or malformed command\n");
  return 1;
}
