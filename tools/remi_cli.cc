// remi — command-line front end to the library.
//
// Subcommands:
//   remi stats <kb>                          KB statistics
//   remi convert <in> <out>                  N-Triples / RKF / RKF2 conversion
//   remi snapshot <in> <out.rkf2>            build a KB, save an RKF2 snapshot
//   remi mine <kb> --targets <iri[,iri...]>  mine the most intuitive RE
//   remi mine <kb> --batch <file>            mine many sets (one per line)
//   remi summarize <kb> --entity <iri>       top-k intuitive atoms
//
// <kb> is an N-Triples file (.nt), an RKF file (.rkf), or an RKF2 snapshot
// (.rkf2; opened zero-copy, no rebuild). Targets accept full IRIs or unique
// IRI suffixes (e.g. "Paris" matches <http://dbpedia.org/resource/Paris> if
// unambiguous). A --batch file holds one comma-separated target set per
// line ('#' starts a comment); with --threads N the sets are mined
// concurrently on one warm miner.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "kb/knowledge_base.h"
#include "nlg/verbalizer.h"
#include "rdf/ntriples.h"
#include "rdf/rkf.h"
#include "remi/remi.h"
#include "summ/remi_summarizer.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using remi::Result;
using remi::Status;

/// Prefixes an error status with the file it came from, so corrupt inputs
/// report "<path>: RKF: ... at byte N" instead of a bare status.
Status WithFileContext(const Status& status, const std::string& path) {
  if (status.ok()) return status;
  return Status(status.code(), path + ": " + status.message());
}

Result<remi::KnowledgeBase> LoadKb(const std::string& path,
                                   const remi::Flags& flags) {
  const double inverse_fraction = flags.GetDouble("inverse-fraction");
  remi::KbOptions options;
  options.inverse_top_fraction = inverse_fraction;
  if (remi::EndsWith(path, ".rkf2")) {
    auto kb = remi::KnowledgeBase::OpenSnapshot(path);
    if (!kb.ok()) return WithFileContext(kb.status(), path);
    if (flags.WasSet("inverse-fraction") &&
        kb->options().inverse_top_fraction != inverse_fraction) {
      std::fprintf(stderr,
                   "note: snapshot was built with --inverse-fraction %g; "
                   "the flag is ignored for .rkf2 inputs\n",
                   kb->options().inverse_top_fraction);
    }
    return kb;
  }
  if (remi::EndsWith(path, ".rkf")) {
    auto data = remi::ReadRkfFile(path);
    if (!data.ok()) return WithFileContext(data.status(), path);
    return remi::KnowledgeBase::Build(std::move(data->dict),
                                      std::move(data->triples), options);
  }
  remi::Dictionary dict;
  remi::NTriplesParser parser(&dict, /*lenient=*/true);
  auto triples = parser.ParseFile(path);
  if (!triples.ok()) return WithFileContext(triples.status(), path);
  if (parser.skipped_lines() > 0) {
    std::fprintf(stderr, "warning: skipped %zu malformed lines\n",
                 parser.skipped_lines());
  }
  return remi::KnowledgeBase::Build(std::move(dict), std::move(*triples),
                                    options);
}

/// Resolves a full IRI or an unambiguous IRI suffix to an entity id.
Result<remi::TermId> ResolveEntity(const remi::KnowledgeBase& kb,
                                   const std::string& name) {
  auto exact = kb.dict().Lookup(remi::TermKind::kIri, name);
  if (exact.ok()) return *exact;
  remi::TermId match = remi::kNullTerm;
  size_t hits = 0;
  for (remi::TermId id = 0; id < kb.dict().size(); ++id) {
    if (kb.dict().kind(id) != remi::TermKind::kIri) continue;
    if (!kb.IsEntity(id)) continue;
    const std::string_view lex = kb.dict().lexical(id);
    if (remi::EndsWith(lex, name) &&
        (lex.size() == name.size() ||
         lex[lex.size() - name.size() - 1] == '/' ||
         lex[lex.size() - name.size() - 1] == '#')) {
      match = id;
      ++hits;
    }
  }
  if (hits == 1) return match;
  if (hits == 0) return Status::NotFound("no entity matches '" + name + "'");
  return Status::InvalidArgument("'" + name + "' is ambiguous (" +
                                 std::to_string(hits) + " matches)");
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdStats(const std::string& path, const remi::Flags& flags) {
  auto kb = LoadKb(path, flags);
  if (!kb.ok()) return Fail(kb.status());
  std::printf("facts        : %zu (%zu base + %zu inverse)\n",
              kb->NumFacts(), kb->NumBaseFacts(),
              kb->NumFacts() - kb->NumBaseFacts());
  std::printf("entities     : %zu\n", kb->NumEntities());
  std::printf("predicates   : %zu\n", kb->NumPredicates());
  std::printf("classes      : %zu\n", kb->classes().size());
  std::printf("dictionary   : %zu terms\n", kb->dict().size());
  std::printf("top entities :");
  const auto& order = kb->EntitiesByProminence();
  for (size_t i = 0; i < order.size() && i < 5; ++i) {
    std::printf(" %s(%llu)", kb->Label(order[i]).c_str(),
                static_cast<unsigned long long>(
                    kb->EntityFrequency(order[i])));
  }
  std::printf("\n");
  return 0;
}

/// Builds a KB from `in_path` and writes it as an RKF2 snapshot.
int CmdSnapshot(const std::string& in_path, const std::string& out_path,
                const remi::Flags& flags) {
  auto kb = LoadKb(in_path, flags);
  if (!kb.ok()) return Fail(kb.status());
  remi::Timer timer;
  if (auto status = kb->SaveSnapshot(out_path); !status.ok()) {
    return Fail(WithFileContext(status, out_path));
  }
  std::printf("wrote %s (%zu facts, %zu entities, %s)\n", out_path.c_str(),
              kb->NumFacts(), kb->NumEntities(),
              remi::FormatSeconds(timer.ElapsedSeconds()).c_str());
  return 0;
}

int CmdConvert(const std::string& in_path, const std::string& out_path,
               const remi::Flags& flags) {
  if (remi::EndsWith(out_path, ".rkf2")) {
    return CmdSnapshot(in_path, out_path, flags);
  }
  remi::Dictionary dict;
  std::vector<remi::Triple> triples;
  if (remi::EndsWith(in_path, ".rkf2")) {
    // A snapshot stores the *built* KB; recover the base facts by
    // dropping the materialized inverse-predicate triples.
    auto kb = remi::KnowledgeBase::OpenSnapshot(in_path);
    if (!kb.ok()) return Fail(WithFileContext(kb.status(), in_path));
    // Deep-copy: the snapshot's dictionary is a view into the mapped
    // file, which dies with `kb` at the end of this block.
    dict = kb->dict().OwnedCopy();
    for (const remi::Triple& t : kb->store().spo()) {
      if (!kb->IsInversePredicate(t.p)) triples.push_back(t);
    }
  } else if (remi::EndsWith(in_path, ".rkf")) {
    auto data = remi::ReadRkfFile(in_path);
    if (!data.ok()) return Fail(WithFileContext(data.status(), in_path));
    dict = std::move(data->dict);
    triples = std::move(data->triples);
  } else {
    remi::NTriplesParser parser(&dict, /*lenient=*/true);
    auto parsed = parser.ParseFile(in_path);
    if (!parsed.ok()) return Fail(WithFileContext(parsed.status(), in_path));
    triples = std::move(*parsed);
  }
  const size_t num_triples = triples.size();
  if (remi::EndsWith(out_path, ".rkf")) {
    auto status = remi::WriteRkfFile(dict, std::move(triples), out_path);
    if (!status.ok()) return Fail(WithFileContext(status, out_path));
  } else {
    const std::string doc = remi::WriteNTriples(dict, triples);
    FILE* f = std::fopen(out_path.c_str(), "wb");
    if (f == nullptr) return Fail(Status::IoError("cannot open " + out_path));
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
  }
  std::printf("wrote %s (%zu triples)\n", out_path.c_str(), num_triples);
  return 0;
}

/// Parses a batch file: one comma-separated target set per line; empty
/// lines and lines starting with '#' are skipped. Returns the resolved
/// sets plus the original line text for reporting.
Result<std::vector<std::pair<std::string, std::vector<remi::TermId>>>>
LoadBatchFile(const remi::KnowledgeBase& kb, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open batch file " + path);
  std::vector<std::pair<std::string, std::vector<remi::TermId>>> sets;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed(remi::TrimWhitespace(line));
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<remi::TermId> targets;
    for (const std::string& name : remi::SplitString(trimmed, ',')) {
      const std::string entity(remi::TrimWhitespace(name));
      if (entity.empty()) continue;
      auto id = ResolveEntity(kb, entity);
      if (!id.ok()) {
        return Status(id.status().code(),
                      "line " + std::to_string(line_no) + ": " +
                          id.status().message());
      }
      targets.push_back(*id);
    }
    if (targets.empty()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": no targets");
    }
    sets.emplace_back(trimmed, std::move(targets));
  }
  return sets;
}

int CmdMineBatch(const remi::KnowledgeBase& kb, const remi::RemiOptions& opts,
                 const remi::Flags& flags) {
  auto batch = LoadBatchFile(kb, flags.GetString("batch"));
  if (!batch.ok()) return Fail(batch.status());
  if (batch->empty()) {
    return Fail(Status::InvalidArgument("batch file contains no target sets"));
  }
  std::vector<std::vector<remi::TermId>> sets;
  sets.reserve(batch->size());
  for (const auto& [line, targets] : *batch) sets.push_back(targets);

  remi::RemiMiner miner(&kb, opts);
  remi::Timer timer;
  auto results = miner.MineBatch(
      sets, static_cast<size_t>(flags.GetInt("exceptions")));
  if (!results.ok()) return Fail(results.status());
  const double elapsed = timer.ElapsedSeconds();

  size_t found = 0;
  for (size_t i = 0; i < results->size(); ++i) {
    const remi::RemiResult& r = (*results)[i];
    if (r.found) {
      ++found;
      std::printf("%-40s %.3f bits  %s\n", (*batch)[i].first.c_str(), r.cost,
                  r.expression.ToString(kb.dict()).c_str());
    } else {
      std::printf("%-40s %s\n", (*batch)[i].first.c_str(),
                  r.timed_out ? "timed out" : "no referring expression");
    }
  }
  std::printf("batch      : %zu/%zu sets with an RE, %d thread(s), %s "
              "(%.1f sets/s)\n",
              found, results->size(), opts.num_threads,
              remi::FormatSeconds(elapsed).c_str(),
              elapsed > 0 ? static_cast<double>(results->size()) / elapsed
                          : 0.0);
  // Same convention as single-set mine: exit 2 when no referring
  // expression was found (here: for any set in the batch).
  return found > 0 ? 0 : 2;
}

int CmdMine(const std::string& path, const remi::Flags& flags) {
  auto kb = LoadKb(path, flags);
  if (!kb.ok()) return Fail(kb.status());

  remi::RemiOptions options;
  options.num_threads = static_cast<int>(flags.GetInt("threads"));
  options.timeout_seconds = flags.GetDouble("timeout");
  options.cost.metric = flags.GetString("metric") == "pr"
                            ? remi::ProminenceMetric::kPageRank
                            : remi::ProminenceMetric::kFrequency;
  options.enumerator.extended_language = !flags.GetBool("standard");

  if (!flags.GetString("batch").empty()) {
    return CmdMineBatch(*kb, options, flags);
  }

  std::vector<remi::TermId> targets;
  for (const std::string& name :
       remi::SplitString(flags.GetString("targets"), ',')) {
    if (name.empty()) continue;
    auto id = ResolveEntity(*kb, name);
    if (!id.ok()) return Fail(id.status());
    targets.push_back(*id);
  }
  if (targets.empty()) {
    return Fail(Status::InvalidArgument("--targets is required"));
  }

  remi::RemiMiner miner(&*kb, options);

  remi::Timer timer;
  auto result = miner.MineReWithExceptions(
      targets, static_cast<size_t>(flags.GetInt("exceptions")));
  if (!result.ok()) return Fail(result.status());
  if (!result->found) {
    std::printf("no referring expression exists for this set%s\n",
                result->timed_out ? " (timed out)" : "");
    return 2;
  }
  remi::Verbalizer verbalizer(&*kb);
  std::printf("expression : %s\n",
              result->expression.ToString(kb->dict()).c_str());
  std::printf("complexity : %.3f bits (Ĉ%s)\n", result->cost,
              flags.GetString("metric").c_str());
  std::printf("verbalized : %s\n",
              verbalizer.Sentence(result->expression).c_str());
  if (!result->exceptions.empty()) {
    std::printf("exceptions :");
    for (const remi::TermId e : result->exceptions) {
      std::printf(" %s", kb->Label(e).c_str());
    }
    std::printf("\n");
  }
  std::printf("search     : |G|=%zu, %llu nodes, %s\n",
              result->stats.num_common_subgraphs,
              static_cast<unsigned long long>(result->stats.nodes_visited),
              remi::FormatSeconds(timer.ElapsedSeconds()).c_str());
  return 0;
}

int CmdSummarize(const std::string& path, const remi::Flags& flags) {
  auto kb = LoadKb(path, flags);
  if (!kb.ok()) return Fail(kb.status());
  auto entity = ResolveEntity(*kb, flags.GetString("entity"));
  if (!entity.ok()) return Fail(entity.status());

  remi::RemiMiner miner(
      &*kb, remi::MakeTable3RemiOptions(remi::ProminenceMetric::kFrequency));
  const auto summary = remi::RemiSummarize(
      miner, *entity, static_cast<size_t>(flags.GetInt("k")));
  std::printf("summary of %s:\n", kb->Label(*entity).c_str());
  for (const auto& item : summary) {
    std::printf("  %s = %s\n", kb->Label(item.predicate).c_str(),
                kb->Label(item.object).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  remi::Flags flags;
  flags.DefineString("targets", "", "comma-separated entities (mine)");
  flags.DefineString("batch", "",
                     "file with one target set per line (mine)");
  flags.DefineString("entity", "", "entity to summarize (summarize)");
  flags.DefineString("metric", "fr", "prominence metric: fr | pr");
  flags.DefineInt("threads", 1, "worker threads (>1 = P-REMI)");
  flags.DefineInt("k", 5, "summary size (summarize)");
  flags.DefineInt("exceptions", 0, "allowed non-target matches (mine)");
  flags.DefineBool("standard", false,
                   "restrict mining to the standard (atom-only) language");
  flags.DefineDouble("timeout", 0.0, "mining timeout in seconds");
  flags.DefineDouble("inverse-fraction", 0.01,
                     "inverse materialization fraction (paper: 0.01)");
  if (auto status = flags.Parse(argc, argv); !status.ok()) {
    return Fail(status);
  }
  const auto& args = flags.positional();
  if (args.empty()) {
    std::printf(
        "usage: remi <stats|convert|snapshot|mine|summarize> <kb> "
        "[args]\n\n%s",
        flags.Help().c_str());
    return 1;
  }
  const std::string& command = args[0];
  if (command == "stats" && args.size() == 2) {
    return CmdStats(args[1], flags);
  }
  if (command == "convert" && args.size() == 3) {
    return CmdConvert(args[1], args[2], flags);
  }
  if (command == "snapshot" && args.size() == 3) {
    return CmdSnapshot(args[1], args[2], flags);
  }
  if (command == "mine" && args.size() == 2) {
    return CmdMine(args[1], flags);
  }
  if (command == "summarize" && args.size() == 2) {
    return CmdSummarize(args[1], flags);
  }
  std::fprintf(stderr, "unknown or malformed command\n");
  return 1;
}
