# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-review
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/remi_tests[1]_include.cmake")
add_test([=[cli_smoke_stats]=] "/root/repo/build-review/remi_cli" "stats" "/root/repo/tests/data/smoke.nt")
set_tests_properties([=[cli_smoke_stats]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;63;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[cli_smoke_mine]=] "/root/repo/build-review/remi_cli" "mine" "/root/repo/tests/data/smoke.nt" "--targets" "Berlin")
set_tests_properties([=[cli_smoke_mine]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;66;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[cli_smoke_mine_set]=] "/root/repo/build-review/remi_cli" "mine" "/root/repo/tests/data/smoke.nt" "--targets" "Berlin,Hamburg")
set_tests_properties([=[cli_smoke_mine_set]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;70;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[cli_smoke_summarize]=] "/root/repo/build-review/remi_cli" "summarize" "/root/repo/tests/data/smoke.nt" "--entity" "Berlin" "--k" "3")
set_tests_properties([=[cli_smoke_summarize]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;74;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[cli_smoke_snapshot]=] "/root/repo/build-review/remi_cli" "snapshot" "/root/repo/tests/data/smoke.nt" "smoke_snapshot.rkf2")
set_tests_properties([=[cli_smoke_snapshot]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;79;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[cli_smoke_mine_snapshot]=] "/root/repo/build-review/remi_cli" "mine" "smoke_snapshot.rkf2" "--targets" "Berlin")
set_tests_properties([=[cli_smoke_mine_snapshot]=] PROPERTIES  DEPENDS "cli_smoke_snapshot" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;83;add_test;/root/repo/CMakeLists.txt;0;")
